// Extraction unit tests: pinned edge cases the compiler's designs exercise
// only incidentally (butting contacts, transistors split across cell
// boundaries, floating nets, multi-cut contacts, depletion loads) plus the
// canonical-netlist contract itself (intrinsic anchors, deterministic
// naming, source/drain orientation, the golden text format).
#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "layout/layout.hpp"

namespace silc::extract {
namespace {

using geom::Orient;
using geom::Rect;
using layout::Cell;
using layout::Library;
using tech::Layer;

Netlist extract_shapes(std::vector<layout::Shape> shapes,
                       std::vector<layout::FlatLabel> labels = {}) {
  layout::Flattened flat;
  flat.shapes = std::move(shapes);
  flat.labels = std::move(labels);
  return extract_flat(flat);
}

TEST(Extract, ButtingContactJoinsPolyDiffAndMetal) {
  // One cut spanning the poly/diff seam under metal: all three conductors
  // become a single node.
  const Netlist nl = extract_shapes({{Layer::Diff, {-6, 0, 2, 4}},
                                     {Layer::Poly, {2, 0, 10, 4}},
                                     {Layer::Contact, {-2, 0, 6, 4}},
                                     {Layer::Metal, {-8, -2, 12, 6}}});
  EXPECT_EQ(nl.node_count(), 1u);
  EXPECT_TRUE(nl.warnings.empty());
}

TEST(Extract, TransistorSplitAcrossCellBoundary) {
  // Half the device in each of two abutting instances; only the stitched
  // chip has a transistor, and both modes agree on its W/L.
  Library lib;
  Cell& half = lib.create("half");
  half.add_rect(Layer::Diff, {0, -8, 3, 12});
  half.add_rect(Layer::Poly, {-4, 0, 3, 4});
  Cell& top = lib.create("top");
  top.add_instance(half, {Orient::R0, {0, 0}});
  top.add_instance(half, {Orient::MY, {6, 0}});
  const Netlist flat = extract(top);
  const Netlist hier = extract_hier(top);
  EXPECT_EQ(flat, hier);
  ASSERT_EQ(flat.transistors.size(), 1u);
  EXPECT_EQ(flat.transistors[0].width, 6);
  EXPECT_EQ(flat.transistors[0].length, 4);
  EXPECT_TRUE(flat.transistors[0].vertical);
}

TEST(Extract, FloatingNetsStayDistinctAndAutoNamed) {
  // Three isolated conductors: no merging, deterministic "n<i>" names in
  // anchor order (bottom-left first).
  const Netlist nl = extract_shapes({{Layer::Metal, {50, 50, 60, 56}},
                                     {Layer::Diff, {0, 0, 10, 4}},
                                     {Layer::Poly, {0, 20, 10, 24}}});
  ASSERT_EQ(nl.node_count(), 3u);
  EXPECT_EQ(nl.node_names[0], "n0");
  EXPECT_EQ(nl.node_anchors[0].y, 0);  // the diff rect is lowest
  EXPECT_EQ(nl.node_anchors[0].layer, 0);
  EXPECT_EQ(nl.node_anchors[1].y, 20);
  EXPECT_EQ(nl.node_anchors[2].y, 50);
  EXPECT_TRUE(nl.transistors.empty());
}

TEST(Extract, MultiCutContactMergesNets) {
  // Two edge-connected cuts form one contact group; its bounding box joins
  // two metal arms that never touch each other to the diffusion below.
  const Netlist joined = extract_shapes({{Layer::Diff, {-2, -2, 10, 6}},
                                         {Layer::Contact, {0, 0, 4, 4}},
                                         {Layer::Contact, {4, 0, 8, 4}},
                                         {Layer::Metal, {-2, -2, 3, 6}},
                                         {Layer::Metal, {5, -2, 10, 6}}});
  EXPECT_EQ(joined.node_count(), 1u);
  // The same cuts pulled apart are two groups: the arms stay separate
  // nets (each joined to the shared diffusion? no — separated diffs too).
  const Netlist apart = extract_shapes({{Layer::Diff, {-2, -2, 3, 6}},
                                        {Layer::Diff, {5, -2, 10, 6}},
                                        {Layer::Contact, {0, 0, 3, 4}},
                                        {Layer::Contact, {6, 0, 9, 4}},
                                        {Layer::Metal, {-2, -2, 3, 6}},
                                        {Layer::Metal, {5, -2, 10, 6}}});
  EXPECT_EQ(apart.node_count(), 2u);
}

TEST(Extract, DepletionLoadDetection) {
  // An implant over the channel makes a depletion device; a neighbouring
  // un-implanted channel stays enhancement.
  const Netlist nl = extract_shapes({// depletion load
                                     {Layer::Diff, {0, -8, 4, 12}},
                                     {Layer::Poly, {-4, 0, 8, 4}},
                                     {Layer::Implant, {-3, -3, 7, 7}},
                                     // enhancement driver, far away
                                     {Layer::Diff, {100, -8, 104, 12}},
                                     {Layer::Poly, {96, 0, 108, 4}}});
  ASSERT_EQ(nl.transistors.size(), 2u);
  EXPECT_EQ(nl.depletion_count(), 1u);
  EXPECT_EQ(nl.enhancement_count(), 1u);
  // Canonical transistor order is by channel position: x=0 first.
  EXPECT_EQ(nl.transistors[0].type, Device::Depletion);
  EXPECT_EQ(nl.transistors[1].type, Device::Enhancement);
}

TEST(Extract, SupplyRailsAndNamingAreCanonical) {
  const Netlist nl = extract_shapes(
      {{Layer::Metal, {0, 0, 40, 6}}, {Layer::Metal, {0, 20, 40, 26}}},
      {{"chip.pwr.VDD", Layer::Metal, {20, 23}},
       {"vdd", Layer::Metal, {10, 23}},
       {"gnd", Layer::Metal, {10, 3}}});
  ASSERT_EQ(nl.node_count(), 2u);
  // Shortest (then lexicographically least) alias is the primary name.
  EXPECT_EQ(nl.node_names[0], "gnd");
  EXPECT_EQ(nl.node_names[1], "vdd");
  EXPECT_EQ(nl.node_aliases[1],
            (std::vector<std::string>{"chip.pwr.VDD", "vdd"}));
  EXPECT_EQ(nl.vdd_nodes, (std::vector<int>{1}));
  EXPECT_EQ(nl.gnd_nodes, (std::vector<int>{0}));
  EXPECT_TRUE(nl.is_vdd(1));
  EXPECT_TRUE(nl.is_gnd(0));
  EXPECT_EQ(nl.find_node("chip.pwr.VDD"), 1);
}

TEST(Extract, SourceIsBottomOrLeftInEveryOrientation) {
  // One vertical transistor with labelled terminals, instantiated under
  // every Manhattan orientation: the canonical source is always the
  // bottom (vertical) or left (horizontal) terminal, and W/L follow.
  Library lib;
  Cell& t = lib.create("t");
  t.add_rect(Layer::Diff, {0, -10, 4, 14});
  t.add_rect(Layer::Poly, {-4, 0, 10, 4});  // asymmetric gate overhang
  for (const Orient o :
       {Orient::R0, Orient::R90, Orient::R180, Orient::R270, Orient::MX,
        Orient::MY, Orient::MXR90, Orient::MYR90}) {
    Library tlib;
    Cell& wrap = tlib.create("wrap");
    Cell& leaf = tlib.create("leaf");
    leaf.add_rect(Layer::Diff, {0, -10, 4, 14});
    leaf.add_rect(Layer::Poly, {-4, 0, 10, 4});
    wrap.add_instance(leaf, {o, {100, 100}});
    const Netlist flat = extract(wrap);
    const Netlist hier = extract_hier(wrap);
    EXPECT_EQ(flat, hier) << to_string(o);
    ASSERT_EQ(flat.transistors.size(), 1u) << to_string(o);
    const Transistor& tr = flat.transistors[0];
    EXPECT_EQ(tr.width, 4) << to_string(o);
    EXPECT_EQ(tr.length, 4) << to_string(o);
    // Source anchor below/left of drain anchor along the terminal axis.
    const NodeAnchor& s = flat.node_anchors[static_cast<std::size_t>(tr.source)];
    const NodeAnchor& d = flat.node_anchors[static_cast<std::size_t>(tr.drain)];
    if (tr.vertical) {
      EXPECT_LT(s.y, d.y) << to_string(o);
    } else {
      EXPECT_LT(s.x, d.x) << to_string(o);
    }
  }
}

TEST(Extract, WarningsAreCanonicalAndComplete) {
  const Netlist nl = extract_shapes({// floating contact
                                     {Layer::Contact, {100, 100, 104, 104}},
                                     // channel with one terminal only
                                     {Layer::Diff, {0, 0, 4, 10}},
                                     {Layer::Poly, {-4, 6, 8, 10}}},
                                    {{"ghost", Layer::Metal, {500, 500}}});
  ASSERT_EQ(nl.warnings.size(), 3u);  // sorted: channel..., floating..., label...
  EXPECT_NE(nl.warnings[0].find("channel with fewer"), std::string::npos);
  EXPECT_NE(nl.warnings[1].find("floating contact"), std::string::npos);
  EXPECT_NE(nl.warnings[2].find("label 'ghost' not over metal"),
            std::string::npos);
  EXPECT_NE(nl.summary().find("3 warnings"), std::string::npos);
}

TEST(Extract, ToTextIsStableAndDiffable) {
  const Netlist nl = extract_shapes({{Layer::Diff, {0, -8, 4, 12}},
                                     {Layer::Poly, {-4, 0, 8, 4}}},
                                    {{"g", Layer::Poly, {2, 2}}});
  const std::string text = to_text(nl);
  EXPECT_NE(text.find("silc-netlist v1"), std::string::npos);
  EXPECT_NE(text.find("nodes 3 transistors 1 warnings 0"), std::string::npos);
  EXPECT_NE(text.find(" g anchor="), std::string::npos);
  EXPECT_NE(text.find("aliases=g"), std::string::npos);
  EXPECT_NE(text.find("t 0 enh"), std::string::npos);
  // Rendering a netlist twice is byte-identical (canonical form).
  EXPECT_EQ(text, to_text(nl));
}

}  // namespace
}  // namespace silc::extract
