// SILC language tests: structured programs, data-type extension (records),
// parameterised generation, and the text -> layout -> CIF pipeline.
#include <gtest/gtest.h>

#include "drc/drc.hpp"
#include "lang/lang.hpp"

namespace silc::lang {
namespace {

RunResult run(const std::string& src, layout::Library& lib) {
  return run_program(src, lib);
}

TEST(Silc, ArithmeticAndControlFlow) {
  layout::Library lib;
  const RunResult r = run(R"(
    let total = 0;
    for i in 1 .. 10 { total = total + i; }
    let n = 0;
    while n * n < 50 { n = n + 1; }
    if total == 55 and n == 8 { print("ok", total, n); }
    else { print("bad"); }
  )", lib);
  EXPECT_EQ(r.output, "ok 55 8\n");
}

TEST(Silc, FunctionsAndRecursion) {
  layout::Library lib;
  const RunResult r = run(R"(
    func fib(n) {
      if n < 2 { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    print(fib(15));
  )", lib);
  EXPECT_EQ(r.output, "610\n");
}

TEST(Silc, ListsAndStrings) {
  layout::Library lib;
  const RunResult r = run(R"(
    let xs = [3, 1, 4];
    push(xs, 1);
    xs[0] = 10;
    print(len(xs), xs[0] + xs[3], "v=" + str(xs[2]));
  )", lib);
  EXPECT_EQ(r.output, "4 11 v=4\n");
}

// The paper's "data type extensions": records + functions as methods.
TEST(Silc, DataTypeExtension) {
  layout::Library lib;
  const RunResult r = run(R"(
    func point(x, y) { return {x: x, y: y}; }
    func shifted(p, dx, dy) { return point(p.x + dx, p.y + dy); }
    let p = shifted(point(3, 4), 10, 20);
    p.x = p.x + 1;
    print(p.x, p.y);
  )", lib);
  EXPECT_EQ(r.output, "14 24\n");
}

TEST(Silc, BuildsLayoutHierarchy) {
  layout::Library lib;
  const RunResult r = run(R"(
    let leaf = cell("leaf");
    rect(leaf, "metal", 0, 0, 10, 6);
    label(leaf, "a", "metal", 5, 3);
    let top = cell("top");
    for i in 0 .. 3 { place(top, leaf, i * 20, 0); }
    print(width(top), height(top), flat_count(top));
  )", lib);
  EXPECT_EQ(r.output, "70 6 4\n");
  EXPECT_NE(lib.find("top"), nullptr);
  EXPECT_EQ(lib.find("top")->instances().size(), 4u);
}

// A structured program generating a parameterised, DRC-clean artwork and
// emitting CIF: macroscopic silicon compilation from text alone.
TEST(Silc, ParameterisedShiftRegisterRowIsClean) {
  layout::Library lib;
  const RunResult r = run(R"(
    func sr_row(n) {
      let row = cell("sr_row");
      let stage = shiftstage();
      for i in 0 .. n - 1 { place(row, stage, i * 76, 0); }
      return row;
    }
    let row = sr_row(4);
    print(drc_violations(row));
    write_cif(row);
  )", lib);
  EXPECT_EQ(r.output, "0\n");
  EXPECT_NE(r.cif.find("DS"), std::string::npos);
  EXPECT_NE(r.cif.find("sr_row"), std::string::npos);
}

TEST(Silc, GeneratorBindings) {
  layout::Library lib;
  const RunResult r = run(R"(
    let i = inv(8);
    let g = nand2();
    let m = rom([1, 2, 3, 0], 2);
    let p = port_rect(i, "out");
    print(width(i) > 0, width(g) > 0, width(m) > 0, p.x1 > p.x0);
  )", lib);
  EXPECT_EQ(r.output, "true true true true\n");
}

TEST(Silc, Errors) {
  layout::Library lib;
  const auto bad = [&lib](const std::string& src) {
    layout::Library fresh;
    EXPECT_THROW(run_program(src, fresh), SilcError) << src;
  };
  bad("let x = ;");
  bad("print(y);");                       // undefined
  bad("let x = 1 / 0;");                  // division by zero
  bad("let l = [1]; print(l[3]);");       // out of range
  bad("func f(a) { return a; } f(1, 2);");  // arity
  bad("let c = cell(5);");                // type error
  bad("rect(cell(\"c\"), \"bogus\", 0, 0, 4, 4);");  // unknown layer
  bad("nosuchfunc(1);");
  bad("func f() { return f(); } f();");   // recursion limit
  bad("while true { }");                  // step limit
  bad("let x = 3; x.y = 1;");             // field on non-record
}

TEST(Silc, StepCountReported) {
  layout::Library lib;
  const RunResult r = run("let x = 1; for i in 1 .. 100 { x = x + i; }", lib);
  EXPECT_GT(r.steps, 100u);
}

}  // namespace
}  // namespace silc::lang
