// The incremental-recompilation contract: edit-then-incremental ==
// recompile-from-scratch, byte-identical — at every grain. The main
// harness drives randomized edit sequences (move/resize/delete shapes,
// relabel nets, add/remove instances, retech) through an
// IncrementalSession and diffs every verdict against cold flat / hier /
// tiled recomputes under both rule tables and both 1 and 4 threads.
// Around it: the edge cases an interactive loop lives on (an edit that
// CURES a violation, an edit inside a seam window, a naming-only edit
// that must invalidate extraction but not DRC, the empty-EditSet no-op
// that reuses everything), the chaos leg sweeping the incr.* fault sites
// against the flat-recompute fallback, the persistent-store baseline
// warm-up across sessions, and CompiledSim::update's tape-level version
// of the same invariant.
//
// Every randomized test follows the fixtures/fuzz_env.hpp convention:
// SILC_FUZZ_TRIALS scales the sweep, SILC_FUZZ_SEED reruns one seed, and
// failures print a one-line repro command.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "core/incremental_session.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "fault/fault.hpp"
#include "fuzz_env.hpp"
#include "layout/layout.hpp"
#include "net/net.hpp"
#include "random_edits.hpp"
#include "random_layout.hpp"
#include "random_netlist.hpp"
#include "sim/sim.hpp"
#include "tech/tech.hpp"

namespace silc {
namespace {

using core::IncrementalSession;
using core::IncrVerdict;
using layout::Cell;
using layout::Library;
using silc_fixtures::EditKind;
using silc_fixtures::EditLog;
using silc_fixtures::random_edit;
using silc_fixtures::retech_variant;
using tech::Layer;

struct DisarmOnExit {
  ~DisarmOnExit() { fault::Injector::global().disarm(); }
};

/// A scratch directory removed on scope exit.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("silc_incr_test_") + tag + "_" +
            std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Small, dense, NON-transposing hierarchies: every DRC/extract mode is
/// byte-identical on these (no R90-family re-slabbing residual), which is
/// what lets the harness demand equality rather than equivalence.
const Cell& small_hierarchy(Library& lib, unsigned seed) {
  silc_fixtures::RandomHierarchyOptions o;
  o.leaves = 2;
  o.instances = 3;
  o.motifs = 3;
  o.extent = 40;
  o.spread = 80;
  o.transposing = false;
  o.parent_wires = 3;
  return silc_fixtures::random_hierarchy(lib, seed, o);
}

std::string drc_diff(const drc::Result& incr, const drc::Result& scratch) {
  return "incremental: " + incr.summary() + "\nscratch:     " +
         scratch.summary();
}

std::string netlist_diff(const extract::Netlist& incr,
                         const extract::Netlist& scratch) {
  return "incremental:\n" + to_text(incr) + "scratch:\n" + to_text(scratch);
}

// ------------------------------------------- randomized differential run --

TEST(Incremental, RandomizedEditSequencesMatchScratch) {
  silc_fixtures::fuzz_seeds(
      "test_incremental", "Incremental.RandomizedEditSequencesMatchScratch",
      0, 500, [](unsigned seed) {
        std::mt19937 rng(seed * 2654435761u + 12345u);
        Library lib;
        small_hierarchy(lib, seed);
        Cell& top = *lib.find("top");

        IncrementalSession sess;
        bool tight = false;
        const auto cur = [&]() -> const tech::Tech& {
          return tight ? retech_variant() : tech::nmos();
        };

        const IncrVerdict v0 = sess.verify(lib, top);
        EXPECT_TRUE(v0.cold);

        IncrVerdict last = v0;
        for (int e = 0; e < 2; ++e) {
          const EditLog log = random_edit(lib, top, rng);
          if (log.kind == EditKind::Retech) {
            tight = !tight;
            sess.set_tech(cur());
          }
          SCOPED_TRACE("edit " + std::to_string(e) + ": " + log.detail);
          last = sess.verify(lib, top);
          EXPECT_FALSE(last.cold);

          // The exhaustive flat baseline, recomputed from nothing.
          const drc::Result flat =
              drc::check_flat(layout::flatten(top), cur());
          EXPECT_EQ(last.drc.violations, flat.violations)
              << drc_diff(last.drc, flat);
          const extract::Netlist xflat = extract::extract(top, cur());
          EXPECT_EQ(last.netlist, xflat) << netlist_diff(last.netlist, xflat);
        }

        // The other modes on the final state: a cold hierarchical run and
        // a tiled run alternating 1 and 4 threads across the sweep.
        const drc::Result hier = drc::check_hier(top, cur());
        EXPECT_EQ(last.drc.violations, hier.violations)
            << drc_diff(last.drc, hier);
        const drc::Result tiled = drc::check_tiled(
            layout::flatten(top), cur(), (seed % 2) != 0 ? 4 : 1);
        EXPECT_EQ(last.drc.violations, tiled.violations)
            << drc_diff(last.drc, tiled);
        const extract::Netlist xhier = extract::extract_hier(top, cur());
        EXPECT_EQ(last.netlist, xhier) << netlist_diff(last.netlist, xhier);
      });
}

// --------------------------------------------------------- edge cases --

TEST(Incremental, EditThatCuresAViolationClearsTheVerdict) {
  // nmos metal space is 3 lambda = 6 coords: a 4-coord gap violates.
  Library lib;
  Cell& top = lib.create("top");
  top.add_rect(Layer::Metal, {0, 0, 20, 6});
  top.add_rect(Layer::Metal, {0, 10, 20, 16});

  IncrementalSession sess;
  const IncrVerdict sick = sess.verify(lib, top);
  ASSERT_FALSE(sick.drc.ok()) << "fixture must start out violating";

  // Move the second rect out of range: the verdict must go clean — a
  // stale cached violation surviving the edit would be the classic
  // incremental bug.
  top.set_shape(1, {Layer::Metal, {0, 14, 20, 20}});
  const IncrVerdict cured = sess.verify(lib, top);
  EXPECT_FALSE(cured.cold);
  EXPECT_FALSE(cured.edits.empty());
  EXPECT_FALSE(cured.drc_stats.verdict_reused);
  EXPECT_TRUE(cured.drc.ok()) << cured.drc.summary();
  const drc::Result scratch = drc::check_flat(layout::flatten(top));
  EXPECT_EQ(cured.drc.violations, scratch.violations);
}

TEST(Incremental, SeamEditReprovesInteractionWindows) {
  // Two clean instances far apart; the edit drops a parent wire into the
  // gap, violating against BOTH instances — offences that exist only in
  // the interaction windows, never inside any single cell.
  Library lib;
  Cell& leaf = lib.create("leaf");
  leaf.add_rect(Layer::Metal, {0, 0, 8, 6});
  Cell& top = lib.create("top");
  top.add_instance(leaf, {geom::Orient::R0, {0, 0}});
  top.add_instance(leaf, {geom::Orient::R0, {30, 0}});

  IncrementalSession sess;
  const IncrVerdict clean = sess.verify(lib, top);
  ASSERT_TRUE(clean.drc.ok()) << clean.drc.summary();

  top.add_rect(Layer::Metal, {12, 0, 25, 6});  // 4 to the left, 5 to the right
  const IncrVerdict seam = sess.verify(lib, top);
  EXPECT_FALSE(seam.drc.ok());
  const drc::Result scratch = drc::check_flat(layout::flatten(top));
  EXPECT_EQ(seam.drc.violations, scratch.violations)
      << drc_diff(seam.drc, scratch);
  EXPECT_EQ(seam.drc.count("metal.space"), 2u) << seam.drc.summary();

  // And the cure: deleting the wire re-proves the windows back to clean.
  top.remove_shape(top.shapes().size() - 1);
  const IncrVerdict cured = sess.verify(lib, top);
  EXPECT_TRUE(cured.drc.ok()) << cured.drc.summary();
  EXPECT_EQ(cured.drc.violations, clean.drc.violations);
}

TEST(Incremental, NamingOnlyEditInvalidatesExtractNotDrc) {
  Library lib;
  Cell& top = lib.create("top");
  top.add_rect(Layer::Metal, {0, 0, 30, 6});
  top.add_label("alpha", Layer::Metal, {10, 3});

  IncrementalSession sess;
  const IncrVerdict before = sess.verify(lib, top);
  ASSERT_EQ(before.netlist.node_names.size(), 1u);
  EXPECT_EQ(before.netlist.node_names[0], "alpha");

  top.set_label_text(0, "beta");
  const IncrVerdict after = sess.verify(lib, top);

  // The EditSet must classify this as naming-only; DRC (geometry-only
  // footprint) hands its baseline back verbatim, extraction re-runs and
  // sees the new name.
  EXPECT_TRUE(after.edits.naming_only()) << after.edits.summary();
  EXPECT_TRUE(after.drc_stats.verdict_reused);
  EXPECT_EQ(after.drc.violations, before.drc.violations);
  EXPECT_FALSE(after.extract_stats.netlist_reused);
  ASSERT_EQ(after.netlist.node_names.size(), 1u);
  EXPECT_EQ(after.netlist.node_names[0], "beta");
  const extract::Netlist scratch = extract::extract(top);
  EXPECT_EQ(after.netlist, scratch) << netlist_diff(after.netlist, scratch);
}

TEST(Incremental, EmptyEditSetReusesEverything) {
  Library lib;
  small_hierarchy(lib, 11);
  Cell& top = *lib.find("top");

  IncrementalSession sess;
  const IncrVerdict first = sess.verify(lib, top);
  const IncrVerdict again = sess.verify(lib, top);

  EXPECT_TRUE(again.edits.empty()) << again.edits.summary();
  EXPECT_TRUE(again.drc_stats.verdict_reused);
  EXPECT_TRUE(again.extract_stats.netlist_reused);
  EXPECT_EQ(again.drc_stats.cells_reused, again.drc_stats.cells_total);
  EXPECT_EQ(again.extract_stats.cells_reused,
            again.extract_stats.cells_total);
  EXPECT_EQ(again.drc_stats.cells_reproved, 0u);
  EXPECT_EQ(again.extract_stats.cells_reproved, 0u);
  EXPECT_EQ(again.drc.violations, first.drc.violations);
  EXPECT_EQ(again.netlist, first.netlist);
}

TEST(Incremental, ChaosAtIncrSitesFallsBackFlatByteIdentical) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;

  for (const char* site : {"incr.drc", "incr.extract"}) {
    SCOPED_TRACE(site);
    Library lib;
    small_hierarchy(lib, 23);
    Cell& top = *lib.find("top");

    IncrementalSession sess;
    (void)sess.verify(lib, top);
    top.add_rect(Layer::Metal, {0, 0, 6, 6});  // force a geometry re-prove

    fault::Schedule s;
    s.triggers.push_back({site, fault::Kind::Throw, 0, true, 0, ""});
    fault::Injector::global().arm(s);
    const IncrVerdict v = sess.verify(lib, top);
    const std::uint64_t fired = fault::Injector::global().fired();
    fault::Injector::global().disarm();

    EXPECT_GE(fired, 1u) << "the armed site was never reached";
    if (std::string(site) == "incr.drc") {
      EXPECT_TRUE(v.drc_stats.fell_back_flat);
    } else {
      EXPECT_TRUE(v.extract_stats.fell_back_flat);
    }
    // Degraded, not wrong: the fallback's verdicts are byte-identical to
    // a scratch recompute.
    const drc::Result flat = drc::check_flat(layout::flatten(top));
    EXPECT_EQ(v.drc.violations, flat.violations) << drc_diff(v.drc, flat);
    const extract::Netlist xflat = extract::extract(top);
    EXPECT_EQ(v.netlist, xflat) << netlist_diff(v.netlist, xflat);
  }
}

TEST(Incremental, StoreBaselineWarmsAcrossSessions) {
  const TempDir dir("warm");
  const std::string cache_dir = dir.path.string();

  IncrVerdict first;
  {
    Library lib;
    small_hierarchy(lib, 7);
    IncrementalSession sess;
    first = sess.verify(lib, *lib.find("top"));
    ASSERT_TRUE(sess.save_store(cache_dir));
  }

  // A brand-new process-equivalent: fresh session, fresh library (same
  // content rebuilt from the seed), caches warmed from disk. Even the
  // COLD verify reuses every cell.
  Library lib;
  small_hierarchy(lib, 7);
  IncrementalSession sess;
  ASSERT_TRUE(sess.load_store(cache_dir));
  const IncrVerdict v = sess.verify(lib, *lib.find("top"));
  EXPECT_TRUE(v.cold);
  EXPECT_GT(v.cells_reused(), 0u);
  EXPECT_EQ(v.drc_stats.cells_reproved, 0u);
  EXPECT_EQ(v.extract_stats.cells_reproved, 0u);
  EXPECT_EQ(v.drc.violations, first.drc.violations);
  EXPECT_EQ(v.netlist, first.netlist);

  // Absent store: a clean cold start, not an error.
  IncrementalSession other;
  EXPECT_FALSE(other.load_store(cache_dir + "/nonexistent"));
}

// -------------------------------------------------- CompiledSim::update --

using net::GateKind;
using net::Netlist;
using sim::CompiledSim;
using sim::diff_traces;
using sim::IncrTapeStats;
using sim::Trace;
using sim::TraceDiff;
using sim::Vector;

/// The appended-gate edit: same netlist plus one new output gate, so the
/// old decomposition survives verbatim at its old indices.
Netlist with_extra_gate(const Netlist& nl) {
  Netlist out = nl;
  const int g = out.add_gate(GateKind::Nand,
                             {out.inputs()[0], out.inputs()[1]}, "extra");
  out.mark_output(g, "extra_out");
  return out;
}

std::vector<Trace> random_stimuli(const Netlist& nl, int lanes, int cycles,
                                  unsigned seed) {
  std::mt19937_64 vals(seed);
  std::vector<Trace> stimuli(static_cast<std::size_t>(lanes));
  for (Trace& t : stimuli) {
    t.resize(static_cast<std::size_t>(cycles));
    for (Vector& row : t) {
      for (const int in : nl.inputs()) row[nl.net_name(in)] = vals() & 1u;
    }
  }
  return stimuli;
}

void expect_tapes_identical(const CompiledSim& updated,
                            const CompiledSim& fresh,
                            const std::string& context) {
  EXPECT_EQ(updated.tape().ops, fresh.tape().ops) << context;
  EXPECT_EQ(updated.tape().level_begin, fresh.tape().level_begin) << context;
  EXPECT_EQ(updated.tape().dffs, fresh.tape().dffs) << context;
  EXPECT_EQ(updated.tape().slots, fresh.tape().slots) << context;
}

TEST(IncrementalSim, UpdateMatchesFreshBuildByteForByte) {
  silc_fixtures::fuzz_seeds(
      "test_incremental", "IncrementalSim.UpdateMatchesFreshBuildByteForByte",
      1, 4, [](unsigned seed) {
        const Netlist before = silc_fixtures::random_netlist(seed);
        const Netlist after = with_extra_gate(before);

        CompiledSim updated(before);
        IncrTapeStats st;
        updated.update(after, &st);
        CompiledSim fresh(after);

        // Tape-level byte identity. (An appended gate adds a net, which
        // shifts every temp-slot id, so reuse may legitimately be zero
        // here — the in-place edit test below is the reuse proof; this
        // one proves the worst case still lands byte-identical.)
        expect_tapes_identical(updated, fresh,
                               "seed " + std::to_string(seed));
        EXPECT_FALSE(st.identical);
        EXPECT_EQ(st.ops_reused + st.ops_relevelized, st.ops_total);

        // Behavioral identity from power-on — update leaves the sim in
        // the same state a fresh build starts in.
        const auto probes = silc_fixtures::output_probe_names(after);
        const auto stimuli = random_stimuli(after, 4, 24, seed * 7 + 1);
        const std::vector<Trace> got = updated.run(stimuli, probes);
        const std::vector<Trace> want = fresh.run(stimuli, probes);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t l = 0; l < got.size(); ++l) {
          const TraceDiff d = diff_traces(want[l], got[l]);
          EXPECT_TRUE(d.identical)
              << "seed " << seed << " lane " << l << ": " << d.to_string();
        }
      });
}

/// Two netlists identical except for the KIND of one mid-stream gate:
/// same nets, same slots, same op indices — the shape of an in-place
/// edit. Downstream logic splits into the edit's cone (re-levelized) and
/// independent gates (reused verbatim).
Netlist editable_netlist(GateKind edited_kind) {
  Netlist nl;
  std::vector<int> in;
  for (int i = 0; i < 4; ++i) {
    in.push_back(nl.add_input("in" + std::to_string(i)));
  }
  const int a = nl.add_gate(GateKind::And, {in[0], in[1]}, "a");
  const int b = nl.add_gate(GateKind::Or, {in[2], in[3]}, "b");
  const int c = nl.add_gate(GateKind::Xor, {a, b}, "c");
  const int e = nl.add_gate(edited_kind, {c, in[0]}, "edited");
  const int d0 = nl.add_gate(GateKind::Nand, {e, b}, "d0");
  const int d1 = nl.add_gate(GateKind::Not, {d0}, "d1");
  const int f0 = nl.add_gate(GateKind::Nor, {a, in[2]}, "f0");
  const int f1 = nl.add_gate(GateKind::Xnor, {f0, b}, "f1");
  const int q = nl.add_net("q");
  nl.add_gate_driving(GateKind::Dff, {f1}, q, "r0");
  nl.mark_output(d1, "out_edit_cone");
  nl.mark_output(f1, "out_independent");
  nl.mark_output(q, "out_state");
  return nl;
}

TEST(IncrementalSim, InPlaceGateEditReusesTheUntouchedCone) {
  const Netlist before = editable_netlist(GateKind::And);
  const Netlist after = editable_netlist(GateKind::Nand);

  CompiledSim updated(before);
  IncrTapeStats st;
  updated.update(after, &st);
  CompiledSim fresh(after);
  expect_tapes_identical(updated, fresh, "in-place edit");

  // Only the edited gate and its fanout cone paid; the independent
  // gates (and everything upstream of the edit) kept their levels.
  EXPECT_FALSE(st.identical);
  EXPECT_GT(st.ops_reused, 0u);
  EXPECT_GT(st.ops_relevelized, 0u);
  EXPECT_LT(st.ops_relevelized, st.ops_total);
  EXPECT_EQ(st.ops_reused + st.ops_relevelized, st.ops_total);

  const auto probes = silc_fixtures::output_probe_names(after);
  const auto stimuli = random_stimuli(after, 3, 20, 55);
  const std::vector<Trace> got = updated.run(stimuli, probes);
  const std::vector<Trace> want = fresh.run(stimuli, probes);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t l = 0; l < got.size(); ++l) {
    const TraceDiff d = diff_traces(want[l], got[l]);
    EXPECT_TRUE(d.identical) << "lane " << l << ": " << d.to_string();
  }
}

TEST(IncrementalSim, UpdateAcrossDisjointNetlistsStaysCorrect) {
  // The worst case: nothing survives the diff. Still byte-identical.
  const Netlist a = silc_fixtures::random_netlist(31);
  const Netlist b = silc_fixtures::random_netlist(
      32, {.inputs = 4, .gates = 80, .dffs = 4, .outputs = 4});
  CompiledSim updated(a);
  IncrTapeStats st;
  updated.update(b, &st);
  CompiledSim fresh(b);
  expect_tapes_identical(updated, fresh, "disjoint");

  const auto probes = silc_fixtures::output_probe_names(b);
  const auto stimuli = random_stimuli(b, 2, 16, 99);
  const std::vector<Trace> got = updated.run(stimuli, probes);
  const std::vector<Trace> want = fresh.run(stimuli, probes);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t l = 0; l < got.size(); ++l) {
    EXPECT_TRUE(diff_traces(want[l], got[l]).identical);
  }
}

TEST(IncrementalSim, IdenticalNetlistKeepsTapeVerbatim) {
  const Netlist nl = silc_fixtures::random_netlist(5);
  CompiledSim updated(nl);
  const std::vector<sim::TapeOp> ops_before = updated.tape().ops;

  IncrTapeStats st;
  updated.update(nl, &st);
  EXPECT_TRUE(st.identical);
  EXPECT_EQ(st.ops_reused, st.ops_total);
  EXPECT_EQ(st.ops_relevelized, 0u);
  EXPECT_EQ(updated.tape().ops, ops_before);

  CompiledSim fresh(nl);
  const auto probes = silc_fixtures::output_probe_names(nl);
  const auto stimuli = random_stimuli(nl, 2, 16, 123);
  const std::vector<Trace> got = updated.run(stimuli, probes);
  const std::vector<Trace> want = fresh.run(stimuli, probes);
  for (std::size_t l = 0; l < got.size(); ++l) {
    EXPECT_TRUE(diff_traces(want[l], got[l]).identical);
  }
}

TEST(IncrementalSim, UpdateChaosLeavesOldSimUsable) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;

  const Netlist before = silc_fixtures::random_netlist(8);
  const Netlist after = with_extra_gate(before);
  CompiledSim updated(before);

  fault::Schedule s;
  s.triggers.push_back({"incr.sim.update", fault::Kind::Throw, 0, true, 0, ""});
  fault::Injector::global().arm(s);
  EXPECT_THROW(updated.update(after), fault::InjectedFault);
  fault::Injector::global().disarm();

  // The fault fired before any member mutation: the old sim still runs
  // and still matches a fresh build of the ORIGINAL netlist.
  CompiledSim fresh(before);
  const auto probes = silc_fixtures::output_probe_names(before);
  const auto stimuli = random_stimuli(before, 2, 16, 77);
  const std::vector<Trace> got = updated.run(stimuli, probes);
  const std::vector<Trace> want = fresh.run(stimuli, probes);
  for (std::size_t l = 0; l < got.size(); ++l) {
    EXPECT_TRUE(diff_traces(want[l], got[l]).identical);
  }

  // And a disarmed retry of the same update succeeds normally.
  updated.update(after);
  CompiledSim fresh_after(after);
  expect_tapes_identical(updated, fresh_after, "post-chaos retry");
}

}  // namespace
}  // namespace silc
