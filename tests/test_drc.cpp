// DRC negative tests: every rule family must catch a deliberately broken
// layout (the generator tests prove the absence of false positives; these
// prove the absence of false negatives rule by rule). Plus the engine
// contracts: flat, hierarchical, and tiled modes report byte-identical
// violation sets at any thread count; results are canonical (sorted,
// deduped); the verdict cache hits across libraries; and the rule table is
// data (a technology edit changes verdicts with no engine change).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/compiler.hpp"
#include "design_sources.hpp"
#include "drc/drc.hpp"
#include "fuzz_env.hpp"
#include "layout/layout.hpp"

namespace silc::drc {
namespace {

using geom::Rect;
using layout::Cell;
using layout::Library;
using tech::Layer;

Result check_shapes(const std::vector<layout::Shape>& shapes) {
  return check_flat(shapes);
}

TEST(DrcRules, MinWidth) {
  // 2.5-lambda metal wire (needs 3).
  const Result r = check_shapes({{Layer::Metal, Rect{0, 0, 40, 5}}});
  EXPECT_EQ(r.count("metal.width"), 1u);
  // Exactly minimum width passes.
  EXPECT_TRUE(check_shapes({{Layer::Metal, Rect{0, 0, 40, 6}}}).ok());
}

TEST(DrcRules, WidthOfProtrusionsIsLocal) {
  // A wide rail with a wide tab: no violation even though the tab is short.
  const Result ok = check_shapes({{Layer::Metal, Rect{0, 0, 60, 6}},
                                  {Layer::Metal, Rect{10, 6, 22, 8}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // A 2-unit-wide spike off the rail is a violation.
  const Result bad = check_shapes({{Layer::Metal, Rect{0, 0, 60, 6}},
                                   {Layer::Metal, Rect{10, 6, 12, 20}}});
  EXPECT_GT(bad.count("metal.width"), 0u);
}

TEST(DrcRules, SpacingSameLayer) {
  // Two diffusion shapes 2.5 lambda apart (need 3).
  const Result r = check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                                 {Layer::Diff, Rect{0, 9, 10, 13}}});
  EXPECT_EQ(r.count("diff.space"), 1u);
  EXPECT_TRUE(check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                            {Layer::Diff, Rect{0, 10, 10, 14}}})
                  .ok());
}

TEST(DrcRules, SpacingDiagonal) {
  // Corner-to-corner closer than the rule in both axes.
  const Result r = check_shapes({{Layer::Poly, Rect{0, 0, 4, 4}},
                                 {Layer::Poly, Rect{6, 6, 10, 10}}});
  EXPECT_EQ(r.count("poly.space"), 1u);
  EXPECT_TRUE(check_shapes({{Layer::Poly, Rect{0, 0, 4, 4}},
                            {Layer::Poly, Rect{6, 8, 10, 12}}})
                  .ok());
}

TEST(DrcRules, NotchInsideOneNet) {
  // A U-shape whose slot is 2 units wide (metal needs 6).
  const Result r = check_shapes({{Layer::Metal, Rect{0, 0, 20, 6}},
                                 {Layer::Metal, Rect{0, 6, 8, 20}},
                                 {Layer::Metal, Rect{10, 6, 20, 20}}});
  EXPECT_GT(r.count("metal.notch"), 0u);
}

TEST(DrcRules, PolyToUnrelatedDiffusion) {
  const Result r = check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                                 {Layer::Poly, Rect{0, 5, 10, 9}}});
  EXPECT_EQ(r.count("poly.diff.space"), 1u);
  EXPECT_TRUE(check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                            {Layer::Poly, Rect{0, 6, 10, 10}}})
                  .ok());
}

TEST(DrcRules, GateOverhangExcusesPolyOnDiff) {
  // A proper transistor: poly crossing diffusion with full overhangs.
  const Result ok = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                  {Layer::Poly, Rect{-4, 0, 8, 4}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // Insufficient poly overhang (1 lambda instead of 2).
  const Result bad = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                   {Layer::Poly, Rect{-2, 0, 6, 4}}});
  EXPECT_EQ(bad.count("gate.overhang"), 1u);
}

TEST(DrcRules, ContactRules) {
  // Good: 2x2 cut with 1-lambda metal+diff surround.
  const Result ok = check_shapes({{Layer::Contact, Rect{0, 0, 4, 4}},
                                  {Layer::Metal, Rect{-2, -2, 6, 6}},
                                  {Layer::Diff, Rect{-2, -2, 6, 6}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // Wrong cut size.
  EXPECT_EQ(check_shapes({{Layer::Contact, Rect{0, 0, 6, 4}},
                          {Layer::Metal, Rect{-2, -2, 8, 6}},
                          {Layer::Diff, Rect{-2, -2, 8, 6}}})
                .count("contact.size"),
            1u);
  // Missing metal surround.
  EXPECT_EQ(check_shapes({{Layer::Contact, Rect{0, 0, 4, 4}},
                          {Layer::Metal, Rect{0, 0, 4, 4}},
                          {Layer::Diff, Rect{-2, -2, 6, 6}}})
                .count("contact.metal.surround"),
            1u);
  // Neither poly nor diffusion under the cut.
  EXPECT_EQ(check_shapes({{Layer::Contact, Rect{0, 0, 4, 4}},
                          {Layer::Metal, Rect{-2, -2, 6, 6}}})
                .count("contact.surround"),
            1u);
}

TEST(DrcRules, ContactToGateSpacing) {
  // Cut 1 lambda from a transistor channel (needs 2).
  const Result r = check_shapes({{Layer::Diff, Rect{0, -8, 4, 20}},
                                 {Layer::Poly, Rect{-4, 0, 8, 4}},
                                 {Layer::Contact, Rect{0, 6, 4, 10}},
                                 {Layer::Metal, Rect{-2, 4, 6, 12}},
                                 {Layer::Diff, Rect{-2, 4, 6, 12}}});
  EXPECT_GT(r.count("contact.gate.space"), 0u);
}

TEST(DrcRules, ImplantRules) {
  // Depletion gate with insufficient implant surround.
  const Result bad = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                   {Layer::Poly, Rect{-4, 0, 8, 4}},
                                   {Layer::Implant, Rect{0, 0, 4, 4}}});
  EXPECT_EQ(bad.count("implant.surround"), 1u);
  // Proper 1.5-lambda surround is clean.
  const Result ok = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                  {Layer::Poly, Rect{-4, 0, 8, 4}},
                                  {Layer::Implant, Rect{-3, -3, 7, 7}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // Implant grazing an enhancement gate.
  const Result graze = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                     {Layer::Poly, Rect{-4, 0, 8, 4}},
                                     {Layer::Implant, Rect{6, 0, 16, 10}}});
  EXPECT_EQ(graze.count("implant.gate.space"), 1u);
}

TEST(DrcRules, BuriedSurround) {
  // Buried window sticking out of the poly.
  const Result r = check_shapes({{Layer::Diff, Rect{0, 0, 12, 4}},
                                 {Layer::Poly, Rect{0, 0, 6, 4}},
                                 {Layer::Buried, Rect{4, 0, 8, 4}}});
  EXPECT_EQ(r.count("buried.surround"), 1u);
}

TEST(DrcRules, CleanEmptyLayout) {
  EXPECT_TRUE(check_shapes({}).ok());
}

TEST(DrcRules, SummaryFormatting) {
  const Result r = check_shapes({{Layer::Metal, Rect{0, 0, 40, 5}}});
  EXPECT_NE(r.summary().find("metal.width"), std::string::npos);
  EXPECT_EQ(check_shapes({}).summary(), "DRC clean");
}

// ------------------------------------------------------ engine contracts --

TEST(DrcResult, CanonicalizeSortsAndDedups) {
  Result r;
  const Violation a{"metal.width", {0, 0, 4, 4}, "x"};
  const Violation b{"diff.space", {2, 2, 6, 6}, "y"};
  r.violations = {a, b, a, a, b};
  r.canonicalize();
  ASSERT_EQ(r.violations.size(), 2u);
  EXPECT_TRUE(r.violations[0] == b);  // sorted by rule name first
  EXPECT_TRUE(r.violations[1] == a);
  EXPECT_FALSE(a == b);
}

/// A deliberately dirty hierarchy exercising every interaction the
/// decomposition has to get right: a dirty cell tiled under rotation, a
/// spacing violation across a seam, a cell-internal violation *cured* by
/// parent geometry (isolated check would report it; flat must win), and a
/// loose-wiring violation away from any instance.
const Cell& dirty_chip(Library& lib) {
  Cell& thin = lib.create("thin");  // 2.5-lambda metal (needs 3)
  thin.add_rect(Layer::Metal, {0, 0, 40, 5});

  Cell& edgy = lib.create("edgy");  // clean alone: metal up to the border
  edgy.add_rect(Layer::Metal, {0, 0, 10, 6});

  Cell& cured = lib.create("cured");  // cut lacking metal surround locally
  cured.add_rect(Layer::Contact, {0, 0, 4, 4});
  cured.add_rect(Layer::Diff, {-2, -2, 6, 6});
  cured.add_rect(Layer::Metal, {0, 0, 4, 4});

  Cell& chip = lib.create("dirty_chip");
  chip.add_instance(thin, {geom::Orient::R0, {0, 0}});
  chip.add_instance(thin, {geom::Orient::R90, {100, 0}});
  chip.add_instance(thin, {geom::Orient::MX, {0, 100}});
  // Two edgy cells 2 units apart: a metal.space offence only the seam sees.
  chip.add_instance(edgy, {geom::Orient::R0, {200, 0}});
  chip.add_instance(edgy, {geom::Orient::R0, {200, 8}});
  // The cure: parent metal completing the surround of the cell's cut.
  chip.add_instance(cured, {geom::Orient::R0, {300, 0}});
  chip.add_rect(Layer::Metal, {296, -4, 308, 8});
  // Loose wiring offence far from any instance: diffusion 2 apart (needs 6).
  chip.add_rect(Layer::Diff, {400, 400, 410, 404});
  chip.add_rect(Layer::Diff, {400, 406, 410, 410});
  return chip;
}

TEST(DrcModes, FlatHierTiledAgreeOnDirtyHierarchy) {
  Library lib;
  const Cell& chip = dirty_chip(lib);
  const Result flat = check(chip);
  // The three tiled thin cells, the seam spacing, and the loose diff pair;
  // the cured contact must NOT be reported.
  EXPECT_EQ(flat.count("metal.width"), 3u);
  EXPECT_EQ(flat.count("metal.space"), 1u);
  EXPECT_EQ(flat.count("diff.space"), 1u);
  EXPECT_EQ(flat.count("contact"), 0u);

  VerdictCache cache;
  const Result hier = check_hier(chip, tech::nmos(), &cache);
  EXPECT_EQ(flat.violations, hier.violations)
      << "flat:\n" << flat.summary() << "\nhier:\n" << hier.summary();

  const auto shapes = layout::flatten(chip);
  for (const int threads : {1, 2, 3}) {
    const Result tiled = check_tiled(shapes, tech::nmos(), threads);
    EXPECT_EQ(flat.violations, tiled.violations)
        << threads << " threads:\n" << tiled.summary();
  }
}

TEST(DrcModes, FlatHierTiledAgreeOnAssembledChip) {
  // A real assembled-by-construction chip (the committed traffic design):
  // clean in every mode, byte-identical violation sets.
  layout::Library lib;
  core::CompileOptions o;
  o.name = "traffic";
  o.stop_after = "assemble";
  const auto r = core::compile(lib, core::Flow::Behavioral,
                               silc_fixtures::kTrafficSource, o);
  ASSERT_NE(r.chip, nullptr);
  const auto shapes = layout::flatten(*r.chip);
  const Result flat = check_flat(shapes);
  EXPECT_TRUE(flat.ok()) << flat.summary();
  const Result hier = check_hier(*r.chip);
  EXPECT_EQ(flat.violations, hier.violations) << hier.summary();
  for (const int threads : {1, 2}) {
    const Result tiled = check_tiled(shapes, tech::nmos(), threads);
    EXPECT_EQ(flat.violations, tiled.violations) << tiled.summary();
  }
}

/// Randomized adversarial sweep of the mode contract: dense soups where
/// violations abound, tiled at several thread counts, random hierarchies
/// with overlapping instances. Byte-identity for tiled and for hier under
/// non-transposing orientations; under transposing reuse, spacing/width
/// fragments may re-slab but per-rule offence presence must still match
/// (nothing is ever dropped).
TEST(DrcModes, FuzzedSoupsAndHierarchiesAgree) {
  const tech::Layer layers[] = {Layer::Diff,    Layer::Poly,
                                Layer::Contact, Layer::Metal,
                                Layer::Implant, Layer::Buried};
  silc_fixtures::fuzz_seeds(
      "test_drc", "DrcModes.FuzzedSoupsAndHierarchiesAgree", 0, 4,
      [&](unsigned seed) {
        std::mt19937 rng(seed);
        std::uniform_int_distribution<int> c(0, 400), w(1, 50), li(0, 5);
        std::vector<layout::Shape> shapes;
        for (int i = 0; i < 500; ++i) {
          const int x = c(rng), y = c(rng);
          shapes.push_back(
              {layers[li(rng)], Rect{x, y, x + w(rng), y + w(rng)}});
        }
        const Result flat = check_flat(shapes);
        EXPECT_FALSE(flat.ok());  // dense soup: the sweep must exercise rules
        for (const int threads : {1, 3}) {
          EXPECT_EQ(flat.violations,
                    check_tiled(shapes, tech::nmos(), threads).violations)
              << "soup seed " << seed << " threads " << threads;
        }
      });
  const geom::Orient plain[] = {geom::Orient::R0, geom::Orient::R180,
                                geom::Orient::MX, geom::Orient::MY};
  silc_fixtures::fuzz_seeds(
      "test_drc", "DrcModes.FuzzedSoupsAndHierarchiesAgree", 0, 6,
      [&](unsigned hseed) {
        for (const bool transposing : {false, true}) {
          std::mt19937 rng(100 + hseed);
          std::uniform_int_distribution<int> c(0, 120), w(1, 30), li(0, 5),
              off(0, 200), ori(0, transposing ? 7 : 3);
          layout::Library lib;
          layout::Cell& leaf = lib.create("leaf");
          for (int i = 0; i < 25; ++i) {
            const int x = c(rng), y = c(rng);
            leaf.add_rect(layers[li(rng)], {x, y, x + w(rng), y + w(rng)});
          }
          layout::Cell& top = lib.create("top");
          for (int i = 0; i < 5; ++i) {
            const geom::Orient o = transposing
                                       ? static_cast<geom::Orient>(ori(rng))
                                       : plain[ori(rng)];
            top.add_instance(leaf, {o, {off(rng), off(rng)}});
          }
          for (int i = 0; i < 8; ++i) {
            const int x = off(rng), y = off(rng);
            top.add_rect(layers[li(rng)], {x, y, x + w(rng), y + w(rng)});
          }
          const Result flat = check(top);
          const Result hier = check_hier(top);
          if (!transposing) {
            EXPECT_EQ(flat.violations, hier.violations)
                << "hier seed " << hseed;
          }
          std::set<std::string> fr, hr;
          for (const Violation& v : flat.violations) fr.insert(v.rule);
          for (const Violation& v : hier.violations) hr.insert(v.rule);
          EXPECT_EQ(fr, hr) << "offence presence, transposing=" << transposing
                            << " seed " << hseed;
        }
      });
}

TEST(DrcModes, VerdictCacheHitsAcrossLibraries) {
  VerdictCache cache;
  Library a;
  (void)check_hier(dirty_chip(a), tech::nmos(), &cache);
  const std::size_t unique_cells = cache.size();
  EXPECT_GT(unique_cells, 0u);
  const auto misses_after_first = cache.misses();

  // The same chip rebuilt in a fresh library: every cell verdict hits.
  Library b;
  const Result warm = check_hier(dirty_chip(b), tech::nmos(), &cache);
  EXPECT_EQ(cache.size(), unique_cells);
  EXPECT_EQ(cache.misses(), misses_after_first);
  EXPECT_GT(cache.hits(), 0u);

  Library c;
  EXPECT_EQ(warm.violations, check_hier(dirty_chip(c)).violations);
}

TEST(DrcRuleTable, TechnologiesAreData) {
  // A stricter process is a table edit, not an engine change: 5-lambda
  // metal makes the previously clean 3-lambda wire a violation.
  tech::Tech strict = tech::nmos();
  strict.name = "strict";
  strict.min_width[tech::index(Layer::Metal)] = strict.lam(5);
  strict.rebuild_drc_tables();
  const std::vector<layout::Shape> wire{{Layer::Metal, Rect{0, 0, 40, 6}}};
  EXPECT_TRUE(check_flat(wire).ok());
  EXPECT_EQ(check_flat(wire, strict).count("metal.width"), 1u);
  // Dropping every rule makes everything clean: the engine has no
  // hard-wired checks of its own.
  tech::Tech lax = tech::nmos();
  lax.drc_rules.clear();
  EXPECT_TRUE(check_flat({{Layer::Metal, Rect{0, 0, 40, 5}},
                          {Layer::Metal, Rect{0, 6, 40, 11}}},
                         lax)
                  .ok());
  // The halo tracks the table: a wider rule widens the interaction reach.
  EXPECT_GT(strict.max_rule_dist(), 0);
  tech::Tech wide = tech::nmos();
  wide.min_space[tech::index(Layer::Metal)] = wide.lam(40);
  wide.rebuild_drc_tables();
  EXPECT_GT(wide.max_rule_dist(), tech::nmos().max_rule_dist());
}

}  // namespace
}  // namespace silc::drc
