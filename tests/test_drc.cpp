// DRC negative tests: every rule family must catch a deliberately broken
// layout (the generator tests prove the absence of false positives; these
// prove the absence of false negatives rule by rule).
#include <gtest/gtest.h>

#include "drc/drc.hpp"
#include "layout/layout.hpp"

namespace silc::drc {
namespace {

using geom::Rect;
using layout::Cell;
using layout::Library;
using tech::Layer;

Result check_shapes(const std::vector<layout::Shape>& shapes) {
  return check_flat(shapes);
}

TEST(DrcRules, MinWidth) {
  // 2.5-lambda metal wire (needs 3).
  const Result r = check_shapes({{Layer::Metal, Rect{0, 0, 40, 5}}});
  EXPECT_EQ(r.count("metal.width"), 1u);
  // Exactly minimum width passes.
  EXPECT_TRUE(check_shapes({{Layer::Metal, Rect{0, 0, 40, 6}}}).ok());
}

TEST(DrcRules, WidthOfProtrusionsIsLocal) {
  // A wide rail with a wide tab: no violation even though the tab is short.
  const Result ok = check_shapes({{Layer::Metal, Rect{0, 0, 60, 6}},
                                  {Layer::Metal, Rect{10, 6, 22, 8}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // A 2-unit-wide spike off the rail is a violation.
  const Result bad = check_shapes({{Layer::Metal, Rect{0, 0, 60, 6}},
                                   {Layer::Metal, Rect{10, 6, 12, 20}}});
  EXPECT_GT(bad.count("metal.width"), 0u);
}

TEST(DrcRules, SpacingSameLayer) {
  // Two diffusion shapes 2.5 lambda apart (need 3).
  const Result r = check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                                 {Layer::Diff, Rect{0, 9, 10, 13}}});
  EXPECT_EQ(r.count("diff.space"), 1u);
  EXPECT_TRUE(check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                            {Layer::Diff, Rect{0, 10, 10, 14}}})
                  .ok());
}

TEST(DrcRules, SpacingDiagonal) {
  // Corner-to-corner closer than the rule in both axes.
  const Result r = check_shapes({{Layer::Poly, Rect{0, 0, 4, 4}},
                                 {Layer::Poly, Rect{6, 6, 10, 10}}});
  EXPECT_EQ(r.count("poly.space"), 1u);
  EXPECT_TRUE(check_shapes({{Layer::Poly, Rect{0, 0, 4, 4}},
                            {Layer::Poly, Rect{6, 8, 10, 12}}})
                  .ok());
}

TEST(DrcRules, NotchInsideOneNet) {
  // A U-shape whose slot is 2 units wide (metal needs 6).
  const Result r = check_shapes({{Layer::Metal, Rect{0, 0, 20, 6}},
                                 {Layer::Metal, Rect{0, 6, 8, 20}},
                                 {Layer::Metal, Rect{10, 6, 20, 20}}});
  EXPECT_GT(r.count("metal.notch"), 0u);
}

TEST(DrcRules, PolyToUnrelatedDiffusion) {
  const Result r = check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                                 {Layer::Poly, Rect{0, 5, 10, 9}}});
  EXPECT_EQ(r.count("poly.diff.space"), 1u);
  EXPECT_TRUE(check_shapes({{Layer::Diff, Rect{0, 0, 10, 4}},
                            {Layer::Poly, Rect{0, 6, 10, 10}}})
                  .ok());
}

TEST(DrcRules, GateOverhangExcusesPolyOnDiff) {
  // A proper transistor: poly crossing diffusion with full overhangs.
  const Result ok = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                  {Layer::Poly, Rect{-4, 0, 8, 4}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // Insufficient poly overhang (1 lambda instead of 2).
  const Result bad = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                   {Layer::Poly, Rect{-2, 0, 6, 4}}});
  EXPECT_EQ(bad.count("gate.overhang"), 1u);
}

TEST(DrcRules, ContactRules) {
  // Good: 2x2 cut with 1-lambda metal+diff surround.
  const Result ok = check_shapes({{Layer::Contact, Rect{0, 0, 4, 4}},
                                  {Layer::Metal, Rect{-2, -2, 6, 6}},
                                  {Layer::Diff, Rect{-2, -2, 6, 6}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // Wrong cut size.
  EXPECT_EQ(check_shapes({{Layer::Contact, Rect{0, 0, 6, 4}},
                          {Layer::Metal, Rect{-2, -2, 8, 6}},
                          {Layer::Diff, Rect{-2, -2, 8, 6}}})
                .count("contact.size"),
            1u);
  // Missing metal surround.
  EXPECT_EQ(check_shapes({{Layer::Contact, Rect{0, 0, 4, 4}},
                          {Layer::Metal, Rect{0, 0, 4, 4}},
                          {Layer::Diff, Rect{-2, -2, 6, 6}}})
                .count("contact.metal.surround"),
            1u);
  // Neither poly nor diffusion under the cut.
  EXPECT_EQ(check_shapes({{Layer::Contact, Rect{0, 0, 4, 4}},
                          {Layer::Metal, Rect{-2, -2, 6, 6}}})
                .count("contact.surround"),
            1u);
}

TEST(DrcRules, ContactToGateSpacing) {
  // Cut 1 lambda from a transistor channel (needs 2).
  const Result r = check_shapes({{Layer::Diff, Rect{0, -8, 4, 20}},
                                 {Layer::Poly, Rect{-4, 0, 8, 4}},
                                 {Layer::Contact, Rect{0, 6, 4, 10}},
                                 {Layer::Metal, Rect{-2, 4, 6, 12}},
                                 {Layer::Diff, Rect{-2, 4, 6, 12}}});
  EXPECT_GT(r.count("contact.gate.space"), 0u);
}

TEST(DrcRules, ImplantRules) {
  // Depletion gate with insufficient implant surround.
  const Result bad = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                   {Layer::Poly, Rect{-4, 0, 8, 4}},
                                   {Layer::Implant, Rect{0, 0, 4, 4}}});
  EXPECT_EQ(bad.count("implant.surround"), 1u);
  // Proper 1.5-lambda surround is clean.
  const Result ok = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                  {Layer::Poly, Rect{-4, 0, 8, 4}},
                                  {Layer::Implant, Rect{-3, -3, 7, 7}}});
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // Implant grazing an enhancement gate.
  const Result graze = check_shapes({{Layer::Diff, Rect{0, -8, 4, 12}},
                                     {Layer::Poly, Rect{-4, 0, 8, 4}},
                                     {Layer::Implant, Rect{6, 0, 16, 10}}});
  EXPECT_EQ(graze.count("implant.gate.space"), 1u);
}

TEST(DrcRules, BuriedSurround) {
  // Buried window sticking out of the poly.
  const Result r = check_shapes({{Layer::Diff, Rect{0, 0, 12, 4}},
                                 {Layer::Poly, Rect{0, 0, 6, 4}},
                                 {Layer::Buried, Rect{4, 0, 8, 4}}});
  EXPECT_EQ(r.count("buried.surround"), 1u);
}

TEST(DrcRules, CleanEmptyLayout) {
  EXPECT_TRUE(check_shapes({}).ok());
}

TEST(DrcRules, SummaryFormatting) {
  const Result r = check_shapes({{Layer::Metal, Rect{0, 0, 40, 5}}});
  EXPECT_NE(r.summary().find("metal.width"), std::string::npos);
  EXPECT_EQ(check_shapes({}).summary(), "DRC clean");
}

}  // namespace
}  // namespace silc::drc
