// The persistent compile store (src/store/store.hpp) and the three cache
// layers it backs — what PR 9's warm-compile story must prove:
//
//   * container round-trip: records written by one Store instance are read
//     back byte-identical by another; a missing file is a silent cold
//     start; truncation, bit flips, format skew, and schema skew each
//     clear the store with one load_error() line and a store.poisoned
//     count — never a throw, never a half-parsed store;
//   * key invalidation by construction: a schema-version bump, an edited
//     technology signature, a changed source text, and a changed
//     output-affecting option all produce keys that MISS; identical
//     inputs across two Store instances (a file round-trip) HIT;
//   * cache serialization equality: VerdictCache verdicts and NetlistCache
//     partial netlists (proto-transistor candidate sets included) survive
//     save_to → file → load_from with every re-extraction an all-hits
//     replay producing equal netlists;
//   * whole-result memoization: a compile served from the store is
//     same_outcome-identical to the compile that produced it, and
//     compile_many's second run over a warm cache_dir is all store hits;
//   * chaos: injected faults and corruption at store.load / store.save
//     degrade to cold compiles with unchanged artifacts — never a wrong
//     answer, never a missing one.
//
// Fault-dependent tests skip under -DSILC_FAULT=OFF; counter assertions
// gate on obs::kEnabled.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "core/result_cache.hpp"
#include "design_sources.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "fault/fault.hpp"
#include "layout/layout.hpp"
#include "obs/obs.hpp"
#include "store/store.hpp"

namespace silc {
namespace {

using core::BatchJob;
using core::BatchResult;
using core::CompileOptions;
using core::CompileResult;
using core::Flow;
using core::ResultCache;
using core::Severity;
using fault::Injector;
using fault::Kind;
using fault::Schedule;
using layout::Cell;
using layout::Library;
using tech::Layer;

struct DisarmOnExit {
  ~DisarmOnExit() { Injector::global().disarm(); }
};

/// A scratch directory removed on scope exit, one per test.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("silc_store_test_") + tag + "_" +
            std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const char* name) const {
    return (path / name).string();
  }
};

CompileOptions quick(const std::string& name) {
  CompileOptions o;
  o.name = name;
  o.gate_verify_cycles = 64;
  o.gate_verify_lanes = 4;
  o.pla_verify_cycles = 32;
  o.verify_cycles = 4;
  o.deadline_ms = 30000;
  return o;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

long long counter_value(const std::vector<obs::MetricSample>& samples,
                        const std::string& name) {
  for (const obs::MetricSample& s : samples) {
    if (s.name == name) return s.value;
  }
  return 0;
}

// ------------------------------------------------------ container basics --

TEST(Store, RoundTripAcrossInstances) {
  const TempDir dir("roundtrip");
  const std::string path = dir.file("silc.store");

  store::Store a;
  a.put("drc", "key1", "payload1");
  a.put("drc", "key2", std::string("\x00\x01\xff", 3));  // binary-safe
  a.put("extract", "key1", "other stream, same key");
  ASSERT_TRUE(a.save(path)) << a.save_error();
  EXPECT_GT(a.file_bytes(), 0u);

  store::Store b;
  EXPECT_TRUE(b.load(path)) << b.load_error();
  EXPECT_TRUE(b.loaded());
  EXPECT_TRUE(b.load_error().empty());
  ASSERT_EQ(b.records(), 3u);
  ASSERT_NE(b.get("drc", "key1"), nullptr);
  EXPECT_EQ(*b.get("drc", "key1"), "payload1");
  ASSERT_NE(b.get("drc", "key2"), nullptr);
  EXPECT_EQ(*b.get("drc", "key2"), std::string("\x00\x01\xff", 3));
  ASSERT_NE(b.get("extract", "key1"), nullptr);
  EXPECT_EQ(*b.get("extract", "key1"), "other stream, same key");
  EXPECT_EQ(b.get("result", "key1"), nullptr);

  // Deterministic serialization: same content, same bytes.
  const std::string first = slurp(path);
  store::Store c;
  c.put("extract", "key1", "other stream, same key");
  c.put("drc", "key2", std::string("\x00\x01\xff", 3));
  c.put("drc", "key1", "payload1");
  ASSERT_TRUE(c.save(dir.file("again.store")));
  EXPECT_EQ(first, slurp(dir.file("again.store")))
      << "insertion order leaked into the serialized bytes";
}

TEST(Store, MissingFileIsASilentColdStart) {
  const TempDir dir("missing");
  store::Store s;
  EXPECT_FALSE(s.load(dir.file("nonexistent.store")));
  EXPECT_FALSE(s.loaded());
  EXPECT_TRUE(s.load_error().empty()) << s.load_error();
  EXPECT_EQ(s.records(), 0u);
}

TEST(Store, SchemaSkewColdStarts) {
  const TempDir dir("schema");
  const std::string path = dir.file("silc.store");
  store::Store old_schema(store::kSchemaVersion + 1);
  old_schema.put("drc", "k", "v");
  ASSERT_TRUE(old_schema.save(path));

  store::Store s;  // current schema
  EXPECT_FALSE(s.load(path));
  EXPECT_FALSE(s.loaded());
  EXPECT_NE(s.load_error().find("schema version"), std::string::npos)
      << s.load_error();
  EXPECT_EQ(s.records(), 0u);
}

TEST(Store, CorruptionColdStartsNeverThrows) {
  const TempDir dir("corrupt");
  const std::string path = dir.file("silc.store");
  store::Store a;
  a.put("drc", "some key material", "some payload material");
  a.put("extract", "second key", "second payload");
  ASSERT_TRUE(a.save(path));
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 24u);

  struct Case {
    const char* what;
    std::string bytes;
    const char* error_needle;
  };
  std::string flipped = good;
  flipped[good.size() - 3] = static_cast<char>(flipped[good.size() - 3] ^ 0x40);
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  std::string bad_format = good;
  bad_format[8] = static_cast<char>(bad_format[8] ^ 0x7f);
  const Case cases[] = {
      {"truncated mid-record", good.substr(0, good.size() - 7),
       "truncated record"},
      {"truncated header", good.substr(0, 10), "truncated header"},
      {"bit flip in a payload", flipped, "checksum mismatch"},
      {"bad magic", bad_magic, "bad magic"},
      {"format skew", bad_format, "format version"},
      {"trailing garbage", good + "zzz", "trailing bytes"},
      {"empty file", std::string(), "empty file"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.what);
    spit(path, c.bytes);
    store::Store s;
    const auto before = obs::Metrics::global().snapshot();
    EXPECT_NO_THROW(EXPECT_FALSE(s.load(path)));
    const auto after = obs::Metrics::global().snapshot();
    EXPECT_FALSE(s.loaded());
    EXPECT_EQ(s.records(), 0u) << "cold start must clear every record";
    EXPECT_NE(s.load_error().find(c.error_needle), std::string::npos)
        << "got: " << s.load_error();
    if (obs::kEnabled) {
      EXPECT_EQ(counter_value(obs::delta(before, after), "store.poisoned"), 1)
          << c.what;
    }
  }
}

TEST(Store, SaveIsAtomicTmpPlusRename) {
  const TempDir dir("atomic");
  const std::string path = dir.file("silc.store");
  store::Store a;
  a.put("drc", "k", "v1");
  ASSERT_TRUE(a.save(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "tmp file must not survive a successful save";

  // Saving over an existing file replaces it wholesale.
  store::Store b;
  b.put("drc", "k", "v2");
  ASSERT_TRUE(b.save(path));
  store::Store c;
  ASSERT_TRUE(c.load(path));
  ASSERT_NE(c.get("drc", "k"), nullptr);
  EXPECT_EQ(*c.get("drc", "k"), "v2");

  // A save to an unwritable path fails with save_error, old file intact.
  store::Store d;
  d.put("drc", "k", "v3");
  EXPECT_FALSE(d.save(dir.file("no_such_dir/silc.store")));
  EXPECT_FALSE(d.save_error().empty());
}

TEST(Store, WriterReaderRoundTripAndBoundsChecks) {
  store::Writer w;
  w.u8(7);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-9000000000LL);
  w.str("hello");
  w.point({-3, 4});
  w.rect({-1, -2, 3, 4});
  const std::string bytes = w.take();

  store::Reader r(bytes);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -9000000000LL);
  EXPECT_EQ(r.str(), "hello");
  const geom::Point p = r.point();
  EXPECT_EQ(p.x, -3);
  EXPECT_EQ(p.y, 4);
  const geom::Rect rc = r.rect();
  EXPECT_EQ(rc.x0, -1);
  EXPECT_EQ(rc.y1, 4);
  EXPECT_TRUE(r.done());

  // Over-read degrades to zeros, never UB; done() reports the failure.
  store::Reader over(bytes);
  over.u64();
  while (over.ok() && over.remaining() > 0) over.u8();
  EXPECT_EQ(over.u32(), 0u);
  EXPECT_FALSE(over.ok());
  EXPECT_FALSE(over.done());

  // A string length larger than the remaining bytes is rejected.
  store::Writer lw;
  lw.u32(1000000);  // claims a megabyte that is not there
  store::Reader lied(lw.take().append("abc", 3));
  EXPECT_EQ(lied.str(), "");
  EXPECT_FALSE(lied.ok());
}

// ------------------------------------------------- cache layer round-trips --

TEST(StoreCaches, VerdictCacheRoundTripsThroughAFile) {
  const TempDir dir("drc_cache");
  const std::string path = dir.file("silc.store");

  drc::VerdictCache a;
  const drc::VerdictCache::Key clean{11, 22, 33, {0, 0, 40, 40}};
  const drc::VerdictCache::Key dirty{11, 23, 5, {-8, -8, 96, 64}};
  a.store(clean, {});
  a.store(dirty, {{"metal.width", {0, 0, 2, 2}, "too narrow", {1, 1}},
                  {"poly.space", {5, 5, 9, 9}, "", {7, 7}}});

  store::Store out;
  a.save_to(out);
  EXPECT_EQ(out.records(), 2u);
  ASSERT_TRUE(out.save(path));

  store::Store in;
  ASSERT_TRUE(in.load(path));
  drc::VerdictCache b;
  b.load_from(in);
  EXPECT_EQ(b.size(), 2u);

  const auto clean_hit = b.find(clean);
  ASSERT_NE(clean_hit, nullptr);
  EXPECT_TRUE(clean_hit->empty());
  const auto dirty_hit = b.find(dirty);
  ASSERT_NE(dirty_hit, nullptr);
  ASSERT_EQ(dirty_hit->size(), 2u);
  EXPECT_EQ((*dirty_hit)[0].rule, "metal.width");
  EXPECT_EQ((*dirty_hit)[0].where, (geom::Rect{0, 0, 2, 2}));
  EXPECT_EQ((*dirty_hit)[0].detail, "too narrow");
  EXPECT_EQ((*dirty_hit)[1].rule, "poly.space");
  EXPECT_EQ(b.poisoned(), 0u) << "re-inserted entries must re-checksum clean";

  // A different tech signature is a different key: no cross-signature hit.
  EXPECT_EQ(b.find({12, 22, 33, {0, 0, 40, 40}}), nullptr);
}

TEST(StoreCaches, NetlistCacheRoundTripReplaysAllHits) {
  const TempDir dir("extract_cache");
  const std::string path = dir.file("silc.store");

  // A cell with a real transistor (poly crossing diff), a metal label, and
  // enough going on that the partial netlist has pieces, a device with
  // candidate sets, and labels — the fields the payload must round-trip.
  Library lib("store-extract");
  Cell& inv = lib.create("inv");
  inv.add_rect(Layer::Diff, {0, -8, 4, 12});
  inv.add_rect(Layer::Poly, {-6, 0, 10, 4});
  inv.add_rect(Layer::Contact, {0, 8, 4, 12});
  inv.add_rect(Layer::Metal, {-2, 7, 6, 13});
  inv.add_label("out", Layer::Metal, {2, 10});
  Cell& top = lib.create("top");
  top.add_instance(inv, {geom::Orient::R0, {0, 0}});
  top.add_instance(inv, {geom::Orient::R0, {40, 0}});

  extract::NetlistCache a;
  const extract::Netlist cold = extract::extract_hier(top, tech::nmos(), &a);
  ASSERT_GT(a.size(), 0u);
  ASSERT_GE(cold.transistors.size(), 2u);

  store::Store out;
  a.save_to(out);
  EXPECT_EQ(out.records(), a.size());
  ASSERT_TRUE(out.save(path));

  store::Store in;
  ASSERT_TRUE(in.load(path));
  extract::NetlistCache b;
  b.load_from(in);
  EXPECT_EQ(b.size(), a.size());

  // The re-extraction must be a pure replay: every cell a hit, zero
  // misses, zero poisonings, and the canonical netlist equal to cold.
  const extract::Netlist warm = extract::extract_hier(top, tech::nmos(), &b);
  EXPECT_EQ(b.misses(), 0u) << "file round-trip lost or skewed an entry";
  EXPECT_GT(b.hits(), 0u);
  EXPECT_EQ(b.poisoned(), 0u);
  EXPECT_TRUE(warm == cold) << "cached partial netlists skewed the result:\n"
                            << to_text(warm) << "\nvs\n" << to_text(cold);
  EXPECT_EQ(to_text(warm), to_text(cold));
}

TEST(StoreCaches, ResultCacheEvictsLeastRecentlyUsed) {
  Library lib;
  const CompileResult r = core::compile(
      lib, Flow::Behavioral, silc_fixtures::kGray2Source, quick("gray2"));
  ASSERT_TRUE(ResultCache::eligible(r)) << r.diag_text();

  // Three results under a two-entry bound: the one touched least recently
  // (fingerprint 2 — 1 was refreshed by a hit) is the one evicted.
  ResultCache cache;
  cache.set_capacity(2);
  cache.store(1, r);
  cache.store(2, r);
  CompileResult out;
  ASSERT_TRUE(cache.find(1, &out));
  cache.store(3, r);

  obs::CacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_TRUE(cache.find(1, &out));
  EXPECT_TRUE(cache.find(3, &out));
  EXPECT_FALSE(cache.find(2, &out)) << "the LRU entry must be the victim";

  // Shrinking the bound evicts immediately; the latest-touched survives.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(cache.stats().evictions, 2u);
  EXPECT_TRUE(cache.find(3, &out));

  // An evicted result is merely a miss — recompile-and-restore works.
  cache.set_capacity(0);  // unbounded again
  cache.store(2, r);
  EXPECT_TRUE(cache.find(2, &out));
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.cif, r.cif);
}

// ---------------------------------------------------------- invalidation --

TEST(StoreInvalidation, FingerprintMissesOnEveryInputEdit) {
  const CompileOptions base_opt = quick("gray2");
  const std::uint64_t base = ResultCache::fingerprint(
      Flow::Behavioral, silc_fixtures::kGray2Source, base_opt, 100, 200);

  // Same inputs, same fingerprint — across "instances" trivially, since
  // the fingerprint is a pure function.
  EXPECT_EQ(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kGray2Source, base_opt,
                                     100, 200),
            base);

  // Changed source text must miss.
  EXPECT_NE(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kTrafficSource, base_opt,
                                     100, 200),
            base);
  // Edited technology signatures must miss.
  EXPECT_NE(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kGray2Source, base_opt,
                                     101, 200),
            base);
  EXPECT_NE(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kGray2Source, base_opt,
                                     100, 201),
            base);
  // A different flow must miss.
  EXPECT_NE(ResultCache::fingerprint(Flow::Structural,
                                     silc_fixtures::kGray2Source, base_opt,
                                     100, 200),
            base);
  // Output-affecting options must miss.
  CompileOptions skipped = base_opt;
  skipped.skip.push_back("drc");
  EXPECT_NE(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kGray2Source, skipped,
                                     100, 200),
            base);
  CompileOptions cycles = base_opt;
  cycles.verify_cycles += 1;
  EXPECT_NE(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kGray2Source, cycles,
                                     100, 200),
            base);

  // Determinism-neutral options must NOT change the key: thread counts,
  // deadlines, cache wiring, cache_dir.
  CompileOptions threads = base_opt;
  threads.sim_threads = 7;
  threads.drc_threads = 3;
  threads.deadline_ms = 12345;
  threads.cache_dir = "/somewhere/else";
  EXPECT_EQ(ResultCache::fingerprint(Flow::Behavioral,
                                     silc_fixtures::kGray2Source, threads,
                                     100, 200),
            base);
}

TEST(StoreInvalidation, SchemaBumpInvalidatesTheWholeFile) {
  const TempDir dir("schema_bump");
  const std::string path = dir.file("silc.store");

  // Written under schema N, read under schema N+1 (the Store(schema) test
  // hook stands in for a real kSchemaVersion bump): cold start, and the
  // caches loaded from it are empty.
  store::Store writer;
  drc::VerdictCache a;
  a.store({1, 2, 3, {0, 0, 8, 8}}, {});
  a.save_to(writer);
  ASSERT_TRUE(writer.save(path));

  store::Store reader(store::kSchemaVersion + 1);
  EXPECT_FALSE(reader.load(path));
  EXPECT_NE(reader.load_error().find("schema version"), std::string::npos);
  drc::VerdictCache b;
  b.load_from(reader);
  EXPECT_EQ(b.size(), 0u);
}

// ------------------------------------------------ whole-result memoization --

TEST(StoreResults, StandaloneCompileWarmsFromCacheDir) {
  const TempDir dir("standalone");
  CompileOptions o = quick("gray2");
  o.cache_dir = dir.path.string();

  Library cold_lib("cold");
  const CompileResult cold =
      core::compile(cold_lib, Flow::Behavioral, silc_fixtures::kGray2Source, o);
  ASSERT_TRUE(cold.ok()) << cold.diag_text();
  EXPECT_FALSE(cold.from_cache);
  ASSERT_TRUE(std::filesystem::exists(dir.file("silc.store")))
      << "compile() with cache_dir must persist the store";

  // Reference compile with no cache anywhere near it.
  Library ref_lib("ref");
  const CompileResult ref = core::compile(
      ref_lib, Flow::Behavioral, silc_fixtures::kGray2Source, quick("gray2"));
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(cold.same_outcome(ref)) << "cache_dir changed a cold compile";

  Library warm_lib("warm");
  const CompileResult warm =
      core::compile(warm_lib, Flow::Behavioral, silc_fixtures::kGray2Source, o);
  EXPECT_TRUE(warm.from_cache) << warm.diag_text();
  EXPECT_TRUE(warm.ok()) << warm.diag_text();
  EXPECT_TRUE(warm.same_outcome(ref))
      << "a store-served result drifted from the compile that produced it";
  EXPECT_EQ(warm.cif, ref.cif);
  EXPECT_EQ(warm.transistors, ref.transistors);
  EXPECT_EQ(warm.rect_count, ref.rect_count);
}

TEST(StoreResults, CompileManySecondRunIsAllStoreHits) {
  const TempDir dir("batch");
  std::vector<BatchJob> jobs;
  jobs.push_back({Flow::Behavioral, silc_fixtures::counter_source(3),
                  quick("counter3")});
  jobs.push_back(
      {Flow::Behavioral, silc_fixtures::kGray2Source, quick("gray2")});
  jobs.push_back(
      {Flow::Behavioral, silc_fixtures::kTrafficSource, quick("traffic")});
  jobs.push_back(
      {Flow::Structural, silc_fixtures::kInvChainSource, quick("chain")});
  const BatchResult ref = core::compile_many(jobs, 2);
  ASSERT_EQ(ref.ok_count(), jobs.size());

  // First batch names the cache_dir on one job only — the batch adopts it.
  std::vector<BatchJob> cached_jobs = jobs;
  cached_jobs[0].options.cache_dir = dir.path.string();
  const BatchResult first = core::compile_many(cached_jobs, 2);
  ASSERT_EQ(first.ok_count(), jobs.size());
  EXPECT_EQ(first.store.hits, 0u);
  EXPECT_EQ(first.store.misses, jobs.size());
  EXPECT_GT(first.store.file_bytes, 0u);
  EXPECT_TRUE(first.store_diags.empty())
      << first.store_diags.front().message;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(first.results[i].same_outcome(ref.results[i]))
        << "job " << i << " drifted under cache_dir\n"
        << first.results[i].diag_text();
    EXPECT_FALSE(first.results[i].from_cache);
  }

  // Second batch, fresh process simulated by a fresh compile_many call:
  // every job must be served from the store, byte-identical.
  const BatchResult second = core::compile_many(cached_jobs, 2);
  ASSERT_EQ(second.ok_count(), jobs.size());
  EXPECT_EQ(second.store.hits, jobs.size());
  EXPECT_EQ(second.store.misses, 0u);
  EXPECT_GT(second.store.loaded_records, 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(second.results[i].from_cache) << "job " << i;
    EXPECT_TRUE(second.results[i].same_outcome(ref.results[i]))
        << "warm job " << i << " drifted\n"
        << second.results[i].diag_text();
  }
}

// ------------------------------------------------------------------ chaos --

TEST(StoreChaos, FaultsAtLoadAndSaveDegradeToColdCompiles) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;

  std::vector<BatchJob> jobs;
  jobs.push_back(
      {Flow::Behavioral, silc_fixtures::kGray2Source, quick("gray2")});
  jobs.push_back(
      {Flow::Structural, silc_fixtures::kInvChainSource, quick("chain")});
  const BatchResult ref = core::compile_many(jobs, 2);
  ASSERT_EQ(ref.ok_count(), jobs.size());

  struct Round {
    const char* what;
    const char* site;
    Kind kind;
    bool warm_first;  // seed the store before arming
  };
  const Round rounds[] = {
      {"load fault on a warm store", "store.load", Kind::Throw, true},
      {"load fault on a cold store", "store.load", Kind::Throw, false},
      {"save fault", "store.save", Kind::Throw, true},
      {"corrupted save detected next load", "store.save", Kind::Corrupt, true},
  };
  std::uint64_t seed = 0x570fe2026ULL;
  for (const Round& round : rounds) {
    SCOPED_TRACE(round.what);
    const TempDir dir(round.what);
    std::vector<BatchJob> cached_jobs = jobs;
    cached_jobs[0].options.cache_dir = dir.path.string();
    if (round.warm_first) {
      const BatchResult warmup = core::compile_many(cached_jobs, 2);
      ASSERT_EQ(warmup.ok_count(), jobs.size());
    }

    Schedule s;
    s.seed = ++seed;
    s.triggers.push_back({round.site, round.kind, 0, true, 0, ""});
    Injector::global().arm(s);
    const BatchResult chaos = core::compile_many(cached_jobs, 2);
    Injector::global().disarm();

    // The batch survives, every artifact matches the fault-free reference
    // (compiled cold if the store was unusable), and results are never
    // polluted by a store-layer diagnostic.
    ASSERT_EQ(chaos.results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_TRUE(chaos.results[i].same_outcome(ref.results[i]))
          << round.what << ": job " << i << " drifted\n"
          << chaos.results[i].diag_text();
    }
    if (round.kind == Kind::Throw) {
      // The injected fault surfaced as a store-layer warning, not silence.
      bool warned = false;
      for (const core::Diag& d : chaos.store_diags) {
        warned |= d.severity == Severity::Warning;
      }
      EXPECT_TRUE(warned) << round.what << ": degradation was silent";
    }

    if (round.kind == Kind::Corrupt) {
      // The corrupted bytes reached disk; the NEXT load must detect the
      // bad checksum, cold-start with a warning, and still compile clean.
      const BatchResult after = core::compile_many(cached_jobs, 2);
      ASSERT_EQ(after.results.size(), jobs.size());
      EXPECT_GE(after.store.poisoned, 1u)
          << "corrupted store was not detected";
      ASSERT_FALSE(after.store_diags.empty());
      EXPECT_NE(after.store_diags[0].message.find("cold start"),
                std::string::npos)
          << after.store_diags[0].message;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(after.results[i].same_outcome(ref.results[i]))
            << round.what << ": post-corruption job " << i << " drifted";
      }
    }
  }
}

TEST(StoreChaos, TruncatedStoreFileColdStartsTheBatch) {
  const TempDir dir("truncate");
  std::vector<BatchJob> jobs;
  jobs.push_back(
      {Flow::Behavioral, silc_fixtures::kGray2Source, quick("gray2")});
  jobs[0].options.cache_dir = dir.path.string();
  const BatchResult warmup = core::compile_many(jobs, 1);
  ASSERT_EQ(warmup.ok_count(), 1u);

  const std::string path = dir.file("silc.store");
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 8u);
  spit(path, bytes.substr(0, bytes.size() - 7));  // torn final record

  const BatchResult after = core::compile_many(jobs, 1);
  ASSERT_EQ(after.ok_count(), 1u);
  EXPECT_GE(after.store.poisoned, 1u);
  EXPECT_EQ(after.store.hits, 0u) << "a torn store must not serve hits";
  ASSERT_FALSE(after.store_diags.empty());
  EXPECT_NE(after.store_diags[0].message.find("cold start"), std::string::npos);
  EXPECT_TRUE(after.results[0].same_outcome(warmup.results[0]))
      << after.results[0].diag_text();
}

}  // namespace
}  // namespace silc
