// ROM generator tests: the artwork must read back every stored word
// through extraction + switch-level simulation.
#include <gtest/gtest.h>

#include <random>

#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "mem/mem.hpp"
#include "swsim/swsim.hpp"

namespace silc::mem {
namespace {

void verify_rom(const std::vector<std::uint32_t>& words, int bits,
                const std::string& name) {
  layout::Library lib;
  const RomResult rom = generate_rom(lib, words, bits, {.name = name});
  ASSERT_NE(rom.cell, nullptr);
  EXPECT_EQ(rom.stats.words, words.size());
  EXPECT_EQ(rom.stats.bits, words.size() * static_cast<std::size_t>(bits));

  const drc::Result d = drc::check(*rom.cell);
  EXPECT_TRUE(d.ok()) << name << ": " << d.summary();

  const extract::Netlist nl = extract::extract(*rom.cell);
  EXPECT_TRUE(nl.warnings.empty());
  swsim::Simulator sim(nl);
  for (std::size_t a = 0; a < words.size(); ++a) {
    for (int b = 0; b < rom.stats.address_bits; ++b) {
      sim.set("in" + std::to_string(b), ((a >> b) & 1u) != 0);
    }
    ASSERT_TRUE(sim.settle());
    std::uint32_t got = 0;
    for (int k = 0; k < bits; ++k) {
      if (sim.get_bool("out" + std::to_string(k))) got |= 1u << k;
    }
    EXPECT_EQ(got, words[a] & ((1u << bits) - 1)) << name << " addr " << a;
  }
}

TEST(Rom, FourWords) { verify_rom({0b01, 0b10, 0b11, 0b00}, 2, "rom4x2"); }

TEST(Rom, EightWordLookupTable) {
  // Squares mod 16.
  std::vector<std::uint32_t> words;
  for (std::uint32_t i = 0; i < 8; ++i) words.push_back((i * i) & 0xF);
  verify_rom(words, 4, "rom_squares");
}

TEST(Rom, AllOnesWordsNeedNoDevices) {
  verify_rom({0x3, 0x3, 0x3, 0x3}, 2, "rom_ones");
}

TEST(Rom, RandomContents) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::uint32_t> w(0, 255);
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 16; ++i) words.push_back(w(rng));
  verify_rom(words, 8, "rom_rand");
}

TEST(Rom, RejectsBadShapes) {
  layout::Library lib;
  EXPECT_THROW(generate_rom(lib, {}, 4), std::invalid_argument);
  EXPECT_THROW(generate_rom(lib, {1, 2, 3}, 4), std::invalid_argument);  // not 2^n
  EXPECT_THROW(generate_rom(lib, {1, 2}, 0), std::invalid_argument);
  EXPECT_THROW(generate_rom(lib, {1}, 4), std::invalid_argument);  // 1 word
}

TEST(Rom, AreaScalesWithContents) {
  layout::Library lib;
  std::vector<std::uint32_t> small(4, 0), big(32, 0);
  const RomResult a = generate_rom(lib, small, 4, {.name = "rs"});
  const RomResult b = generate_rom(lib, big, 4, {.name = "rb"});
  EXPECT_GT(b.stats.area, a.stats.area);
  EXPECT_GT(b.stats.crosspoints, a.stats.crosspoints);
}

}  // namespace
}  // namespace silc::mem
