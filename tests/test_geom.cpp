// Geometry substrate tests: transform group properties, rect operations, and
// the RectSet boolean/morphological algebra.
#include <gtest/gtest.h>

#include <random>

#include "geom/geom.hpp"
#include "geom/rectset.hpp"

namespace silc::geom {
namespace {

const std::array<Orient, 8> kAllOrients = {
    Orient::R0, Orient::R90, Orient::R180, Orient::R270,
    Orient::MX, Orient::MY, Orient::MXR90, Orient::MYR90};

TEST(Rect, BasicPredicates) {
  const Rect r{0, 0, 10, 4};
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 40);
  EXPECT_EQ(r.min_dim(), 4);
  EXPECT_TRUE((Rect{5, 5, 5, 9}).empty());
  EXPECT_TRUE((Rect{5, 5, 9, 5}).empty());
  EXPECT_TRUE((Rect{7, 5, 3, 9}).empty());
}

TEST(Rect, OverlapVsTouch) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.overlaps({2, 2, 6, 6}));
  EXPECT_FALSE(a.overlaps({4, 0, 8, 4}));  // shared edge only
  EXPECT_TRUE(a.touches({4, 0, 8, 4}));
  EXPECT_TRUE(a.touches({4, 4, 8, 8}));  // shared corner
  EXPECT_FALSE(a.overlaps({4, 4, 8, 8}));
  EXPECT_FALSE(a.touches({5, 0, 8, 4}));
}

TEST(Rect, EdgeConnected) {
  const Rect a{0, 0, 4, 4};
  EXPECT_TRUE(a.edge_connected({4, 0, 8, 4}));   // abutting edge
  EXPECT_TRUE(a.edge_connected({2, 2, 6, 6}));   // overlap
  EXPECT_FALSE(a.edge_connected({4, 4, 8, 8}));  // corner only
  EXPECT_FALSE(a.edge_connected({5, 0, 9, 4}));  // gap
  EXPECT_TRUE(a.edge_connected({0, 4, 4, 8}));   // abutting top edge
}

TEST(Rect, IntersectBoundInflate) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 15, 15};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 10, 10}));
  EXPECT_EQ(a.bound(b), (Rect{0, 0, 15, 15}));
  EXPECT_EQ(a.inflated(2), (Rect{-2, -2, 12, 12}));
  EXPECT_EQ(a.inflated(1, 3), (Rect{-1, -3, 11, 13}));
  EXPECT_TRUE(a.contains(Point{10, 10}));
  EXPECT_TRUE(a.contains(Rect{0, 0, 10, 10}));
  EXPECT_FALSE(a.contains(Rect{0, 0, 11, 10}));
}

TEST(Rect, BoundIgnoresEmpty) {
  const Rect a{2, 3, 7, 9};
  EXPECT_EQ(Rect{}.bound(a), a);
  EXPECT_EQ(a.bound(Rect{}), a);
}

class OrientTest : public ::testing::TestWithParam<Orient> {};

TEST_P(OrientTest, InverseComposesToIdentity) {
  const Orient o = GetParam();
  EXPECT_EQ(compose(inverse(o), o), Orient::R0) << to_string(o);
  EXPECT_EQ(compose(o, inverse(o)), Orient::R0) << to_string(o);
}

TEST_P(OrientTest, ActionPreservesRectArea) {
  const Orient o = GetParam();
  const Rect r{-3, 2, 7, 11};
  EXPECT_EQ(apply(o, r).area(), r.area()) << to_string(o);
}

TEST_P(OrientTest, ComposeMatchesSequentialApplication) {
  const Orient o = GetParam();
  const Point p{5, -7};
  for (const Orient q : kAllOrients) {
    EXPECT_EQ(apply(compose(q, o), p), apply(q, apply(o, p)))
        << to_string(q) << " * " << to_string(o);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrients, OrientTest, ::testing::ValuesIn(kAllOrients),
                         [](const auto& info) { return to_string(info.param); });

TEST(Orient, SpecificActions) {
  const Point p{3, 1};
  EXPECT_EQ(apply(Orient::R90, p), (Point{-1, 3}));
  EXPECT_EQ(apply(Orient::R180, p), (Point{-3, -1}));
  EXPECT_EQ(apply(Orient::R270, p), (Point{1, -3}));
  EXPECT_EQ(apply(Orient::MX, p), (Point{3, -1}));
  EXPECT_EQ(apply(Orient::MY, p), (Point{-3, 1}));
  EXPECT_EQ(apply(Orient::MXR90, p), (Point{-1, -3}));
  EXPECT_EQ(apply(Orient::MYR90, p), (Point{1, 3}));
}

TEST(Transform, ComposeAndInvertRoundTrip) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> coord(-50, 50);
  std::uniform_int_distribution<int> oi(0, 7);
  for (int trial = 0; trial < 200; ++trial) {
    const Transform a{kAllOrients[static_cast<std::size_t>(oi(rng))],
                      {coord(rng), coord(rng)}};
    const Transform b{kAllOrients[static_cast<std::size_t>(oi(rng))],
                      {coord(rng), coord(rng)}};
    const Point p{coord(rng), coord(rng)};
    EXPECT_EQ((a * b).apply(p), a.apply(b.apply(p)));
    EXPECT_EQ(a.inverted().apply(a.apply(p)), p);
    EXPECT_EQ((a * a.inverted()), Transform{});
  }
}

TEST(Transform, RectRoundTrip) {
  const Transform t{Orient::MXR90, {10, -4}};
  const Rect r{1, 2, 5, 9};
  EXPECT_EQ(t.inverted().apply(t.apply(r)), r);
}

// ------------------------------------------------------------- RectSet ----

TEST(RectSet, NormalizeMergesOverlaps) {
  RectSet s;
  s.add({0, 0, 10, 10});
  s.add({5, 0, 15, 10});
  EXPECT_EQ(s.rects().size(), 1u);
  EXPECT_EQ(s.rects()[0], (Rect{0, 0, 15, 10}));
  EXPECT_EQ(s.area(), 150);
}

TEST(RectSet, CanonicalFormIsRepresentationIndependent) {
  // The same L-shaped region built two different ways.
  RectSet a;
  a.add({0, 0, 4, 8});
  a.add({0, 0, 8, 4});
  RectSet b;
  b.add({0, 4, 4, 8});
  b.add({0, 0, 8, 4});
  b.add({1, 1, 3, 3});  // fully inside
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.area(), 8 * 4 + 4 * 4);
}

TEST(RectSet, SubtractMakesHole) {
  RectSet s(Rect{0, 0, 10, 10});
  const RectSet hole(Rect{4, 4, 6, 6});
  const RectSet with_hole = s.subtract(hole);
  EXPECT_EQ(with_hole.area(), 100 - 4);
  EXPECT_FALSE(with_hole.contains(Point{5, 5}));
  EXPECT_TRUE(with_hole.covers(Rect{0, 0, 10, 4}));
  EXPECT_FALSE(with_hole.covers(Rect{3, 3, 7, 7}));
  // Union with the hole restores the square.
  EXPECT_EQ(with_hole.unite(hole), s);
}

TEST(RectSet, IntersectIsContainedInBoth) {
  RectSet a;
  a.add({0, 0, 10, 4});
  a.add({0, 6, 10, 10});
  const RectSet b(Rect{5, 0, 20, 10});
  const RectSet i = a.intersect(b);
  EXPECT_EQ(i.area(), 5 * 4 + 5 * 4);
  for (const Rect& r : i.rects()) {
    EXPECT_TRUE(a.covers(r));
    EXPECT_TRUE(b.covers(r));
  }
}

TEST(RectSet, DilateErodeRestoresRectangle) {
  // Opening/closing a plain rectangle is the identity.
  const RectSet s(Rect{0, 0, 20, 8});
  EXPECT_EQ(s.dilated(2).eroded(2), s);
  EXPECT_EQ(s.eroded(2).dilated(2), s);
  EXPECT_EQ(s.eroded(2), RectSet(Rect{2, 2, 18, 6}));
}

TEST(RectSet, ErodeEliminatesThinFeatures) {
  RectSet s;
  s.add({0, 0, 20, 3});   // a 3-tall bar: erode by 2 kills it
  s.add({30, 0, 40, 20});  // a fat block survives
  const RectSet e = s.eroded(2);
  EXPECT_EQ(e, RectSet(Rect{32, 2, 38, 18}));
}

TEST(RectSet, DilateMergesNearbyShapes) {
  RectSet s;
  s.add({0, 0, 4, 4});
  s.add({6, 0, 10, 4});  // gap of 2
  EXPECT_EQ(s.components().size(), 2u);
  const RectSet d = s.dilated(1);
  EXPECT_EQ(d.components().size(), 1u);
}

TEST(RectSet, ComponentsSplitByCornerContact) {
  RectSet s;
  s.add({0, 0, 4, 4});
  s.add({4, 4, 8, 8});  // corner-only contact: electrically separate
  EXPECT_EQ(s.components().size(), 2u);
  s.add({0, 4, 4, 8});  // now bridges them
  EXPECT_EQ(s.components().size(), 1u);
}

TEST(RectSet, LabelComponentsDense) {
  const std::vector<Rect> rects = {
      {0, 0, 2, 2}, {10, 10, 12, 12}, {2, 0, 4, 2}, {20, 0, 22, 2}};
  const std::vector<int> labels = label_components(rects);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[1], labels[3]);
  EXPECT_NE(labels[0], labels[3]);
}

// Property sweep: random rect soups obey boolean-algebra identities.
class RectSetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RectSetPropertyTest, BooleanAlgebraIdentities) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> c(0, 40);
  std::uniform_int_distribution<int> w(1, 12);
  const auto soup = [&](int n) {
    RectSet s;
    for (int i = 0; i < n; ++i) {
      const int x = c(rng), y = c(rng);
      s.add({x, y, x + w(rng), y + w(rng)});
    }
    return s;
  };
  const RectSet a = soup(12), b = soup(12);

  const RectSet uni = a.unite(b);
  const RectSet inter = a.intersect(b);
  const RectSet a_minus_b = a.subtract(b);

  // |A u B| == |A| + |B| - |A n B|
  EXPECT_EQ(uni.area(), a.area() + b.area() - inter.area());
  // A = (A - B) u (A n B), disjointly.
  EXPECT_EQ(a_minus_b.unite(inter.intersect(a)), a);
  EXPECT_EQ(a_minus_b.intersect(inter).area(), 0);
  // (A - B) n B is empty.
  EXPECT_TRUE(a_minus_b.intersect(b).empty());
  // Union covers both.
  for (const Rect& r : a.rects()) EXPECT_TRUE(uni.covers(r));
  for (const Rect& r : b.rects()) EXPECT_TRUE(uni.covers(r));
  // Dilation is extensive, erosion anti-extensive.
  EXPECT_TRUE(a.dilated(2).intersect(a) == a);
  const RectSet er = a.eroded(1);
  EXPECT_TRUE(a.covers(er.bbox()) || er.empty() || a.intersect(er) == er);
  EXPECT_EQ(a.intersect(er), er);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectSetPropertyTest, ::testing::Range(0, 12));

// ---------------------------------------- edge cases the tiled DRC leans on --

TEST(RectSet, ErosionLargerThanShapeIsEmpty) {
  const RectSet s(Rect{0, 0, 10, 6});
  EXPECT_TRUE(s.eroded(3).empty());   // 2d == height
  EXPECT_TRUE(s.eroded(5).empty());   // 2d > both dimensions
  EXPECT_FALSE(s.eroded(2).empty());  // a sliver survives
  EXPECT_TRUE(RectSet{}.eroded(7).empty());
}

TEST(RectSet, CoversAndIntersectsDegenerateRects) {
  const RectSet s(Rect{0, 0, 10, 10});
  // Degenerate (empty-interior) rects: vacuously covered, never
  // intersecting — the conventions windowed checks rely on.
  EXPECT_TRUE(s.covers(Rect{5, 5, 5, 9}));    // zero width
  EXPECT_TRUE(s.covers(Rect{50, 50, 50, 50}));  // zero area, outside
  EXPECT_FALSE(s.intersects(Rect{5, 5, 5, 9}));
  EXPECT_FALSE(s.intersects(Rect{8, 4, 2, 6}));  // inverted
  // Proper rects at the boundary: covers is closed, intersects is open.
  EXPECT_TRUE(s.covers(Rect{0, 0, 10, 10}));
  EXPECT_FALSE(s.covers(Rect{0, 0, 10, 11}));
  EXPECT_FALSE(s.intersects(Rect{10, 0, 20, 10}));  // shared edge only
  EXPECT_TRUE(s.intersects(Rect{9, 9, 20, 20}));
}

TEST(RectSet, LabelComponentsCornerTouchDoesNotConnect) {
  // A diagonal staircase of corner-touching rects: corner contact is not
  // electrical continuity, so every step is its own component.
  const std::vector<Rect> stairs{{0, 0, 4, 4}, {4, 4, 8, 8}, {8, 8, 12, 12}};
  const std::vector<int> sl = label_components(stairs);
  EXPECT_NE(sl[0], sl[1]);
  EXPECT_NE(sl[1], sl[2]);
  EXPECT_NE(sl[0], sl[2]);
  // An edge of positive length does connect; a bridger joins two corners.
  const std::vector<Rect> bridged{{0, 0, 4, 4}, {4, 4, 8, 8}, {4, 0, 8, 4}};
  const std::vector<int> bl = label_components(bridged);
  EXPECT_EQ(bl[0], bl[2]);
  EXPECT_EQ(bl[1], bl[2]);
}

TEST(RectSet, WindowedQueriesMatchWholeSetSemantics) {
  RectSet s;
  s.add({0, 0, 10, 4});
  s.add({20, 2, 30, 8});
  s.add({5, 10, 15, 14});
  const Rect w{8, 0, 22, 12};
  // overlapping: exactly the rects whose closed region meets the window.
  const std::vector<Rect> hits = s.overlapping(w);
  ASSERT_EQ(hits.size(), 3u);  // all three touch this window
  EXPECT_TRUE(s.overlapping(Rect{100, 100, 110, 110}).empty());
  // clipped == intersect with the window rect.
  EXPECT_EQ(s.clipped(w), s.intersect(RectSet(w)));
  // hash: equal regions hash equal regardless of construction.
  RectSet merged;
  merged.add({0, 0, 10, 8});
  RectSet halves;
  halves.add({0, 0, 10, 4});
  halves.add({0, 4, 10, 8});
  EXPECT_EQ(merged.hash(), halves.hash());
  EXPECT_NE(merged.hash(), s.hash());
}

// Tiled-vs-whole equivalence: any boolean result computed window by window
// over a partition (with clipping) reassembles into the whole-plane result.
class TiledOpEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TiledOpEquivalence, PartitionedBooleansReassemble) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 3u);
  std::uniform_int_distribution<int> c(-30, 50);
  std::uniform_int_distribution<int> w(1, 15);
  const auto soup = [&](int n) {
    RectSet s;
    for (int i = 0; i < n; ++i) {
      const int x = c(rng), y = c(rng);
      s.add({x, y, x + w(rng), y + w(rng)});
    }
    return s;
  };
  const RectSet a = soup(20), b = soup(20);
  const Rect bb = a.bbox().bound(b.bbox()).inflated(2);

  const RectSet whole_u = a.unite(b);
  const RectSet whole_i = a.intersect(b);
  const RectSet whole_s = a.subtract(b);

  RectSet tiles_u, tiles_i, tiles_s;
  constexpr int kGrid = 3;
  for (int ix = 0; ix < kGrid; ++ix) {
    for (int iy = 0; iy < kGrid; ++iy) {
      const Rect tile{bb.x0 + bb.width() * ix / kGrid,
                      bb.y0 + bb.height() * iy / kGrid,
                      bb.x0 + bb.width() * (ix + 1) / kGrid,
                      bb.y0 + bb.height() * (iy + 1) / kGrid};
      const RectSet ca = a.clipped(tile), cb = b.clipped(tile);
      tiles_u = tiles_u.unite(ca.unite(cb));
      tiles_i = tiles_i.unite(ca.intersect(cb));
      tiles_s = tiles_s.unite(ca.subtract(cb).clipped(tile));
    }
  }
  EXPECT_EQ(tiles_u, whole_u);
  EXPECT_EQ(tiles_i, whole_i);
  EXPECT_EQ(tiles_s, whole_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiledOpEquivalence, ::testing::Range(0, 8));

}  // namespace
}  // namespace silc::geom
