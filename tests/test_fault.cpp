// Robustness under fire: deadlines, cancellation, fault injection, cache
// poisoning, worker containment, and the chaos differential harness.
//
// The contract this file proves (see src/fault/fault.hpp):
//
//   * a compile with a deadline or a cancelled token returns promptly with
//     a Severity::Cancelled diagnostic — never a hang, never a throw, even
//     against an injected multi-second stall;
//   * an injected exception at any stage boundary becomes a structured
//     error diagnostic on that compile alone;
//   * hierarchical DRC / extraction failures degrade to the flat engines
//     with a warning, byte-identical artifacts (the fallback matrix in
//     drc/drc.hpp and extract/extract.hpp);
//   * a poisoned cache entry is detected by checksum, evicted, counted,
//     and recomputed — degradation is a slower run, never a wrong answer;
//   * one poisoned compile_many job fails alone; every other job's result
//     is bit-identical to a fault-free run — proved differentially over
//     dozens of seeded chaos schedules (the Chaos* tests, which ci.sh also
//     drives explicitly under a fixed seed);
//   * worker-thread exceptions (batch crew, sim::TapePool) are captured
//     and surfaced on the caller — never std::terminate, never a deadlock.
//
// Injection-dependent tests skip themselves under -DSILC_FAULT=OFF (the
// macros are compiled out, so nothing would fire); the cancellation and
// adversarial-input tests run in both builds.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "design_sources.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "fault/fault.hpp"
#include "fuzz_env.hpp"
#include "layout/layout.hpp"
#include "rtl/rtl.hpp"
#include "sim/sim.hpp"

namespace silc {
namespace {

using core::CancelToken;
using core::CompileOptions;
using core::CompileResult;
using core::Flow;
using core::Severity;
using fault::Injector;
using fault::Kind;
using fault::Schedule;
using fault::Trigger;

/// Every armed test disarms on exit, pass or fail, so one failure cannot
/// cascade injected faults into unrelated tests.
struct DisarmOnExit {
  ~DisarmOnExit() { Injector::global().disarm(); }
};

/// Compile options trimmed for harness speed: verification stages still
/// run (their containment is under test) but over few cycles. The 30s
/// deadline is the no-hang backstop every chaos compile carries.
CompileOptions quick(const std::string& name) {
  CompileOptions o;
  o.name = name;
  o.gate_verify_cycles = 64;
  o.gate_verify_lanes = 4;
  o.pla_verify_cycles = 32;
  o.verify_cycles = 4;
  o.deadline_ms = 30000;
  return o;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool diag_mentions(const CompileResult& r, const std::string& needle) {
  return r.diag_text().find(needle) != std::string::npos;
}

/// The artifact view of "same result": everything same_outcome() compares
/// except the diagnostics stream — what graceful degradation must preserve
/// while it adds its fallback warning.
bool artifacts_equal(const CompileResult& a, const CompileResult& b) {
  return a.ok() == b.ok() && a.verified == b.verified && a.cif == b.cif &&
         a.transistors == b.transistors && a.rect_count == b.rect_count &&
         a.drc.violations == b.drc.violations &&
         a.verify_detail == b.verify_detail;
}

/// Like artifacts_equal, but tolerating a different verification summary:
/// what a verify-engine fallback must preserve — the chip, the checks all
/// passing — while the substitute engine words its verdict differently.
bool artifacts_equal_modulo_verify(const CompileResult& a,
                                   const CompileResult& b) {
  return a.ok() == b.ok() && a.verified == b.verified && a.cif == b.cif &&
         a.transistors == b.transistors && a.rect_count == b.rect_count &&
         a.drc.violations == b.drc.violations;
}

// ------------------------------------------------------------ cancellation --

TEST(Cancel, TokenFlagDeadlineAndParentChain) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_STREQ(t.reason(), "cancelled");

  CancelToken d;
  d.set_deadline_after(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.cancelled());
  EXPECT_STREQ(d.reason(), "deadline exceeded");

  CancelToken parent;
  CancelToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());

  // check_cancel honors the ambient scope and throws a named Cancelled.
  const core::CancelScope scope(&parent);
  EXPECT_TRUE(core::cancel_requested());
  try {
    core::check_cancel("unit.test");
    FAIL() << "check_cancel did not throw";
  } catch (const core::Cancelled& c) {
    EXPECT_NE(std::string(c.what()).find("unit.test"), std::string::npos);
  }
}

TEST(Cancel, PreCancelledTokenStopsTheCompileStructurally) {
  layout::Library lib("cancelled");
  CancelToken token;
  token.cancel();
  CompileOptions o = quick("gray2");
  o.deadline_ms = 0;
  o.cancel = &token;
  CompileResult r;
  EXPECT_NO_THROW(
      r = core::compile(lib, Flow::Behavioral, silc_fixtures::kGray2Source, o));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.cancelled());
  EXPECT_TRUE(r.has_errors());
  // Structured, not textual: a Severity::Cancelled diag is present, and
  // every stage slot still has its timing entry (none marked ran).
  bool saw_cancelled = false;
  for (const core::Diag& d : r.diags) {
    saw_cancelled |= d.severity == Severity::Cancelled;
  }
  EXPECT_TRUE(saw_cancelled) << r.diag_text();
  for (const core::StageTiming& t : r.timings) EXPECT_FALSE(t.ran) << t.stage;
}

TEST(Cancel, DeadlineBeatsAnInjectedStall) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  // A 10-second stall in hierarchical DRC vs a 300ms deadline: the stall
  // sleeps in 1ms slices polling the ambient token, so the compile must
  // return a structured cancellation within the deadline plus a modest
  // scheduling margin — not after 10 seconds.
  Schedule s;
  s.triggers.push_back({"drc.hier.cell", Kind::Delay, 0, true, 10000, ""});
  Injector::global().arm(s);

  layout::Library lib("stalled");
  CompileOptions o = quick("traffic");
  o.deadline_ms = 300;
  const auto t0 = std::chrono::steady_clock::now();
  CompileResult r;
  EXPECT_NO_THROW(r = core::compile(lib, Flow::Behavioral,
                                    silc_fixtures::kTrafficSource, o));
  const double elapsed = ms_since(t0);
  EXPECT_TRUE(r.cancelled()) << r.diag_text();
  EXPECT_FALSE(r.ok());
  EXPECT_LT(elapsed, 5000.0) << "stall outlived the deadline";
}

// -------------------------------------------------------- injected faults --

TEST(Inject, StageFaultBecomesAStructuredDiagnostic) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  Schedule s;
  s.triggers.push_back({"pipeline.stage.cif", Kind::Throw, 0, true, 0, ""});
  Injector::global().arm(s);

  layout::Library lib("faulted");
  CompileResult r;
  EXPECT_NO_THROW(r = core::compile(lib, Flow::Behavioral,
                                    silc_fixtures::kGray2Source,
                                    quick("gray2")));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.cancelled());
  EXPECT_TRUE(diag_mentions(r, "injected fault at pipeline.stage.cif"))
      << r.diag_text();
  EXPECT_GE(Injector::global().fired(), 1u);
}

TEST(Inject, HierDrcFailureFallsBackToFlatByteIdentical) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  layout::Library base_lib("base");
  const CompileResult base = core::compile(
      base_lib, Flow::Behavioral, silc_fixtures::kTrafficSource,
      quick("traffic"));
  ASSERT_TRUE(base.ok()) << base.diag_text();

  Schedule s;
  s.triggers.push_back({"drc.hier.cell", Kind::Throw, 0, true, 0, ""});
  Injector::global().arm(s);
  layout::Library lib("hier-drc-down");
  CompileResult r;
  EXPECT_NO_THROW(r = core::compile(lib, Flow::Behavioral,
                                    silc_fixtures::kTrafficSource,
                                    quick("traffic")));
  Injector::global().disarm();

  EXPECT_TRUE(diag_mentions(r, "falling back to flat")) << r.diag_text();
  EXPECT_TRUE(artifacts_equal(r, base)) << "fallback changed the artifacts";
  EXPECT_TRUE(r.ok()) << r.diag_text();  // a warning, not an error
}

TEST(Inject, SymbolicPlaProverFailureFallsBackToCompiled) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  layout::Library base_lib("base");
  const CompileResult base = core::compile(
      base_lib, Flow::Behavioral, silc_fixtures::kGray2Source,
      quick("gray2"));
  ASSERT_TRUE(base.ok()) << base.diag_text();

  Schedule s;
  s.triggers.push_back({"sim.pla.symbolic", Kind::Throw, 0, true, 0, ""});
  Injector::global().arm(s);
  layout::Library lib("prover-down");
  CompileResult r;
  EXPECT_NO_THROW(r = core::compile(lib, Flow::Behavioral,
                                    silc_fixtures::kGray2Source,
                                    quick("gray2")));
  Injector::global().disarm();

  // The proof engine is down, not the personality: pla-check degrades to
  // the compiled netlist diff with a warning and the compile still passes.
  EXPECT_TRUE(diag_mentions(r, "falling back to compiled")) << r.diag_text();
  EXPECT_TRUE(r.ok()) << r.diag_text();
  EXPECT_TRUE(artifacts_equal_modulo_verify(r, base))
      << "fallback changed the artifacts";
  EXPECT_NE(r.verify_detail.find("netlist tape"), std::string::npos)
      << r.verify_detail;
}

TEST(Inject, HierExtractFailureFallsBackToFlatByteIdentical) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  layout::Library base_lib("base");
  const CompileResult base = core::compile(
      base_lib, Flow::Structural, silc_fixtures::kInvChainSource,
      quick("chain"));
  ASSERT_TRUE(base.ok()) << base.diag_text();

  Schedule s;
  s.triggers.push_back({"extract.hier.cell", Kind::Throw, 0, true, 0, ""});
  Injector::global().arm(s);
  layout::Library lib("hier-extract-down");
  CompileResult r;
  EXPECT_NO_THROW(r = core::compile(lib, Flow::Structural,
                                    silc_fixtures::kInvChainSource,
                                    quick("chain")));
  Injector::global().disarm();

  EXPECT_TRUE(diag_mentions(r, "falling back to flat extraction"))
      << r.diag_text();
  EXPECT_TRUE(artifacts_equal(r, base)) << "fallback changed the artifacts";
  EXPECT_TRUE(r.ok()) << r.diag_text();
}

// --------------------------------------------------------- cache poisoning --

TEST(Poison, VerdictCacheDetectsEvictsAndCounts) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  drc::VerdictCache cache;
  const drc::VerdictCache::Key key{1, 2, 3, {0, 0, 40, 40}};
  const std::vector<drc::Violation> verdict = {
      {"metal.width", {0, 0, 2, 2}, "too narrow", {1, 1}}};

  Schedule s;
  s.triggers.push_back({"drc.cache.store", Kind::Corrupt, 0, true, 0, ""});
  Injector::global().arm(s);
  cache.store(key, verdict);
  Injector::global().disarm();

  // The poisoned hit reads as a miss: entry evicted, poisoning counted.
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.poisoned(), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // The recompute path stores a clean entry that verifies and hits.
  cache.store(key, verdict);
  const auto v = cache.find(key);
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0].rule, "metal.width");
  EXPECT_EQ(cache.poisoned(), 1u);  // no new poisonings
}

TEST(Poison, NetlistCachePoisoningRecomputesSameCompile) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  layout::Library base_lib("base");
  const CompileResult base = core::compile(
      base_lib, Flow::Behavioral, silc_fixtures::kGray2Source, quick("gray2"));
  ASSERT_TRUE(base.ok()) << base.diag_text();

  // Every store into the shared cache is poisoned; the second compile's
  // hits must detect the bad checksums, evict, and re-extract — landing on
  // the same outcome as a fault-free run, diagnostics included.
  extract::NetlistCache cache;
  Schedule s;
  s.triggers.push_back({"extract.cache.store", Kind::Corrupt, 0, true, 0, ""});
  Injector::global().arm(s);
  CompileOptions o = quick("gray2");
  o.extract_cache = &cache;
  layout::Library lib1("poisoned1");
  const CompileResult r1 =
      core::compile(lib1, Flow::Behavioral, silc_fixtures::kGray2Source, o);
  layout::Library lib2("poisoned2");
  const CompileResult r2 =
      core::compile(lib2, Flow::Behavioral, silc_fixtures::kGray2Source, o);
  Injector::global().disarm();

  EXPECT_TRUE(r1.same_outcome(base)) << r1.diag_text();
  EXPECT_TRUE(r2.same_outcome(base)) << r2.diag_text();
  EXPECT_GE(cache.poisoned(), 1u)
      << "second compile never tripped over a poisoned entry";
}

// ------------------------------------------------------ worker containment --

TEST(Contain, TapePoolWorkerExceptionSurfacesOnTheCaller) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  // Drive the pool directly (CompiledSim clamps its thread count to
  // hardware concurrency, so a 1-core CI box would never spin it up) and
  // blow up a worker thread mid-pass: the exception must arrive on the
  // calling thread — not std::terminate, not a barrier deadlock — and the
  // pool must survive to run the next pass cleanly.
  using sim::TapeOp;
  std::vector<TapeOp> ops;
  // Slots 0,1 are sources; a two-level ladder wide enough to strip-mine.
  for (std::uint32_t i = 0; i < 8; ++i) {
    ops.push_back({TapeOp::Code::And, 2 + i, 0, 1, 0});
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    ops.push_back({TapeOp::Code::Xor, 10 + i, 2 + i, 1, 0});
  }
  const sim::Tape tape = sim::assemble_tape(std::move(ops), 18, {});
  ASSERT_EQ(tape.depth(), 2);
  sim::TapePool pool(tape, sim::WordKind::U64, 2, 1);

  std::vector<std::uint64_t> slots(18, 0);
  slots[0] = 0xffffffffffffffffULL;
  slots[1] = 0x00000000ffffffffULL;

  Schedule s;
  s.triggers.push_back({"sim.pool.worker", Kind::Throw, 0, false, 0, ""});
  Injector::global().arm(s);
  EXPECT_THROW(pool.eval(slots.data()), fault::InjectedFault);
  Injector::global().disarm();

  // Containment left no poison behind: the same pool computes the pass.
  std::fill(slots.begin() + 2, slots.end(), 0);
  pool.eval(slots.data());
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(slots[2 + i], 0x00000000ffffffffULL) << i;
    EXPECT_EQ(slots[10 + i], 0x0000000000000000ULL) << i;
  }
}

TEST(Contain, CrosscheckSwallowsWorkerFaultsIntoTheReport) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  // End-to-end when the machine can actually run a pool: the contained
  // worker exception must surface as a failed report detail, never escape
  // sim::crosscheck.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 cores for CompiledSim to spin up the pool";
  }
  Schedule s;
  s.triggers.push_back({"sim.pool.worker", Kind::Throw, 0, false, 0, ""});
  Injector::global().arm(s);

  const rtl::Design design = rtl::parse(silc_fixtures::kGray2Source);
  sim::CrosscheckOptions o;
  o.cycles = 32;
  o.switch_cycles = 0;
  o.sim.threads = 2;
  o.sim.parallel_min_ops = 1;
  sim::CrosscheckReport r;
  EXPECT_NO_THROW(r = sim::crosscheck(design, o));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("injected fault at sim.pool.worker"),
            std::string::npos)
      << r.detail;

  // The pool survives containment: a clean run right after passes.
  Injector::global().disarm();
  const sim::CrosscheckReport clean = sim::crosscheck(design, o);
  EXPECT_TRUE(clean.ok) << clean.detail;
}

TEST(Contain, BatchJobFaultFailsOnlyTheVictim) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  std::vector<core::BatchJob> jobs;
  jobs.push_back({Flow::Behavioral, silc_fixtures::counter_source(3),
                  quick("counter3")});
  jobs.push_back({Flow::Behavioral, silc_fixtures::kGray2Source,
                  quick("gray2")});
  jobs.push_back({Flow::Behavioral, silc_fixtures::kTrafficSource,
                  quick("traffic")});
  jobs.push_back({Flow::Structural, silc_fixtures::kInvChainSource,
                  quick("chain")});
  const core::BatchResult base = core::compile_many(jobs, 2);
  ASSERT_EQ(base.ok_count(), jobs.size());

  // Job 2 dies before its compile even starts — outside every stage
  // boundary, the worst containment case.
  Schedule s;
  s.triggers.push_back({"batch.job", Kind::Throw, 0, true, 0, "job:2"});
  Injector::global().arm(s);
  const core::BatchResult chaos = core::compile_many(jobs, 2);
  Injector::global().disarm();

  ASSERT_EQ(chaos.results.size(), jobs.size());
  EXPECT_FALSE(chaos.results[2].ok());
  EXPECT_TRUE(diag_mentions(chaos.results[2], "failed outside stage"))
      << chaos.results[2].diag_text();
  EXPECT_TRUE(diag_mentions(chaos.results[2], "injected fault at batch.job"));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(chaos.results[i].same_outcome(base.results[i]))
        << "job " << i << " was not isolated from the fault";
  }
}

// -------------------------------------------------- chaos differential run --

/// One scheduled chaos scenario: a fault site, what it injects, and what
/// the victim job is entitled to expect.
struct SitePlan {
  const char* site;
  Kind kind;
  enum Expect {
    kHardFail,  // victim fails with a structured "injected fault" diag
    kDegrade,   // victim's artifacts stay byte-identical (fallback path)
    kBenign,    // victim's whole outcome stays identical (recompute/delay)
    // The pla-check sites exist only on the behavioral flow, so both
    // verify expectations tolerate an unreached site (fired == 0: the
    // victim was structural and must be untouched).
    kVerifyFallback,  // symbolic prover down: compiled fallback, same
                      // artifacts modulo the verify summary, still ok
    kVerifyHardFail,  // both pla engines down: structured failure
  } expect;
  int delay_ms = 0;
};

constexpr SitePlan kSitePlans[] = {
    {"pipeline.stage.parse", Kind::Throw, SitePlan::kHardFail, 0},
    {"pipeline.stage.cif", Kind::Throw, SitePlan::kHardFail, 0},
    {"pipeline.stage.drc", Kind::Throw, SitePlan::kHardFail, 0},
    {"batch.job", Kind::Throw, SitePlan::kHardFail, 0},
    {"drc.hier.cell", Kind::Throw, SitePlan::kDegrade, 0},
    {"extract.hier.cell", Kind::Throw, SitePlan::kDegrade, 0},
    {"drc.cache.store", Kind::Corrupt, SitePlan::kBenign, 0},
    {"extract.cache.store", Kind::Corrupt, SitePlan::kBenign, 0},
    {"drc.hier.cell", Kind::Delay, SitePlan::kBenign, 5},
    {"extract.hier.window", Kind::Delay, SitePlan::kBenign, 5},
    {"sim.pla.symbolic", Kind::Delay, SitePlan::kBenign, 5},
    {"sim.pla.symbolic", Kind::Throw, SitePlan::kVerifyFallback, 0},
    {"sim.pla.*", Kind::Throw, SitePlan::kVerifyHardFail, 0},
};

std::vector<core::BatchJob> chaos_jobs() {
  std::vector<core::BatchJob> jobs;
  for (int rep = 0; rep < 6; ++rep) {
    const std::string tag = ":" + std::to_string(rep);
    jobs.push_back({Flow::Behavioral, silc_fixtures::counter_source(3),
                    quick("counter3" + tag)});
    jobs.push_back({Flow::Behavioral, silc_fixtures::kGray2Source,
                    quick("gray2" + tag)});
    jobs.push_back({Flow::Behavioral, silc_fixtures::kTrafficSource,
                    quick("traffic" + tag)});
    jobs.push_back({Flow::Structural, silc_fixtures::kInvChainSource,
                    quick("chain" + tag)});
  }
  return jobs;
}

/// Run one seeded schedule against the 24-job batch and diff every job
/// against the fault-free baseline. Returns the number of expectation
/// failures (also recorded via gtest).
void run_chaos_round(const std::vector<core::BatchJob>& jobs,
                     const core::BatchResult& base, std::uint64_t seed,
                     int round) {
  const SitePlan& plan =
      kSitePlans[(seed + static_cast<std::uint64_t>(round)) %
                 std::size(kSitePlans)];
  const std::size_t victim =
      (seed / 7 + static_cast<std::uint64_t>(round) * 7) % jobs.size();
  const std::string label = "round " + std::to_string(round) + " site " +
                            plan.site + " kind " + to_string(plan.kind) +
                            " victim " + std::to_string(victim);

  Schedule s;
  s.seed = seed;
  s.triggers.push_back({plan.site, plan.kind, 0, true, plan.delay_ms,
                        "job:" + std::to_string(victim)});
  Injector::global().arm(s);
  const auto t0 = std::chrono::steady_clock::now();
  const core::BatchResult chaos = core::compile_many(jobs, 4);
  const double elapsed = ms_since(t0);
  const std::uint64_t fired = Injector::global().fired();
  Injector::global().disarm();

  ASSERT_EQ(chaos.results.size(), jobs.size()) << label;
  EXPECT_LT(elapsed, 60000.0) << label << ": batch hung";

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CompileResult& got = chaos.results[i];
    const CompileResult& want = base.results[i];
    if (i != victim) {
      EXPECT_TRUE(got.same_outcome(want))
          << label << ": non-victim job " << i << " drifted\n"
          << got.diag_text();
      continue;
    }
    switch (plan.expect) {
      case SitePlan::kHardFail:
        // Sticky throws at always-hit sites: the victim must fail with a
        // structured injected-fault diagnostic and nothing else crashes.
        EXPECT_GE(fired, 1u) << label;
        EXPECT_FALSE(got.ok()) << label;
        EXPECT_TRUE(diag_mentions(got, "injected fault"))
            << label << "\n" << got.diag_text();
        break;
      case SitePlan::kDegrade:
        // Hier engine down: flat fallback, artifacts byte-identical (the
        // diag stream additionally carries the fallback warning when the
        // site was actually reached — shared caches can absorb the hit).
        EXPECT_TRUE(artifacts_equal(got, want))
            << label << "\n" << got.diag_text();
        break;
      case SitePlan::kBenign:
        // Poisoned stores are recomputed, delays only cost time: the whole
        // outcome, diagnostics included, is identical.
        EXPECT_TRUE(got.same_outcome(want))
            << label << "\n" << got.diag_text();
        break;
      case SitePlan::kVerifyFallback:
        // Symbolic prover down. Behavioral victims degrade to the compiled
        // diff — same artifacts, different verify wording, plus the
        // warning; structural victims never reach the site.
        if (fired == 0) {
          EXPECT_TRUE(got.same_outcome(want))
              << label << "\n" << got.diag_text();
          break;
        }
        EXPECT_TRUE(got.ok()) << label << "\n" << got.diag_text();
        EXPECT_TRUE(artifacts_equal_modulo_verify(got, want))
            << label << "\n" << got.diag_text();
        EXPECT_TRUE(diag_mentions(got, "falling back to compiled"))
            << label << "\n" << got.diag_text();
        break;
      case SitePlan::kVerifyHardFail:
        // Every pla-check engine down (prefix trigger): behavioral victims
        // fail structurally; structural victims never reach the sites.
        if (fired == 0) {
          EXPECT_TRUE(got.same_outcome(want))
              << label << "\n" << got.diag_text();
          break;
        }
        EXPECT_FALSE(got.ok()) << label;
        EXPECT_TRUE(diag_mentions(got, "injected fault"))
            << label << "\n" << got.diag_text();
        break;
    }
  }
}

TEST(Chaos, DifferentialOverSeededSchedules) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with SILC_FAULT=OFF";
  const DisarmOnExit disarm;
  const std::vector<core::BatchJob> jobs = chaos_jobs();
  ASSERT_EQ(jobs.size(), 24u);
  const core::BatchResult base = core::compile_many(jobs, 4);
  ASSERT_EQ(base.ok_count(), jobs.size())
      << "baseline batch must be fault-free";

  // 50 deterministic rounds (SILC_FUZZ_TRIALS scales the sweep) cover
  // every site plan × a rotating victim; SILC_CHAOS_SEED (ci.sh sets it)
  // adds an extra seeded round on top, and is also the env var a failing
  // round's repro line names.
  const silc_fixtures::FuzzEnv fuzz = silc_fixtures::fuzz_env(50);
  std::uint64_t seed = 0x5113c0de2026ULL;
  for (int round = 0; round < fuzz.trials; ++round) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    SCOPED_TRACE(silc_fixtures::fuzz_repro("test_fault", "Chaos.*", seed,
                                           "SILC_CHAOS_SEED"));
    run_chaos_round(jobs, base, seed, round);
    if (HasFatalFailure()) return;
  }
  if (const char* env = std::getenv("SILC_CHAOS_SEED")) {
    const std::uint64_t pinned = std::strtoull(env, nullptr, 10) | 1ULL;
    SCOPED_TRACE(silc_fixtures::fuzz_repro("test_fault", "Chaos.*", pinned,
                                           "SILC_CHAOS_SEED"));
    run_chaos_round(jobs, base, pinned, fuzz.trials);
  }
}

// ------------------------------------------------------ adversarial corpus --

TEST(Adversarial, MalformedInputsDiagnoseNeverThrowNeverHang) {
  struct Case {
    const char* what;
    Flow flow;
    std::string source;
  };
  const Case corpus[] = {
      {"empty behavioral", Flow::Behavioral, ""},
      {"empty structural", Flow::Structural, ""},
      {"truncated processor", Flow::Behavioral,
       "processor t (input a; output q;) { reg"},
      {"garbage text", Flow::Behavioral, "%%% this is not a language @@@"},
      {"combinational cycle", Flow::Behavioral,
       "processor cyc (input a; output x;) { x = x ^ a; always { } }"},
      {"self-feeding wire pair", Flow::Behavioral,
       "processor loopy (input a; output p;) {"
       "  p = q ^ a; q = p; always { } }"},
      {"unknown builtin", Flow::Structural, "return frob(1);"},
      {"structural runtime error", Flow::Structural,
       "let c = cell(\"z\"); place(c, c, 0, 0); return c;"},
      {"unknown layer", Flow::Structural,
       "let c = cell(\"z\"); rect(c, \"bogus\", 0, 0, 4, 4); return c;"},
      {"no cell returned", Flow::Structural, "let x = 1;"},
  };
  for (const Case& c : corpus) {
    SCOPED_TRACE(c.what);
    layout::Library lib("adversarial");
    CompileOptions o = quick("bad");
    o.deadline_ms = 20000;  // the no-hang guard: malformed != unbounded
    const auto t0 = std::chrono::steady_clock::now();
    CompileResult r;
    EXPECT_NO_THROW(r = core::compile(lib, c.flow, c.source, o)) << c.what;
    EXPECT_LT(ms_since(t0), 20000.0) << c.what;
    EXPECT_FALSE(r.ok()) << c.what << " compiled cleanly:\n" << r.diag_text();
    EXPECT_TRUE(r.has_errors()) << c.what;
    EXPECT_FALSE(r.diags.empty()) << c.what;
  }

  // Degenerate geometry (a zero-area rect) must be handled, not crash:
  // whatever the verdict, the compile returns with structured diagnostics.
  layout::Library lib("degenerate");
  CompileOptions o = quick("zero-area");
  CompileResult r;
  EXPECT_NO_THROW(
      r = core::compile(lib, Flow::Structural,
                        "let c = cell(\"z\"); rect(c, \"metal\", 5, 5, 5, 9);"
                        " rect(c, \"metal\", 0, 0, 0, 0); return c;",
                        o));
  EXPECT_NO_THROW((void)r.diag_text());
}

}  // namespace
}  // namespace silc
