// Leaf-cell generator tests: every generated cell must be DRC-clean for
// every legal parameter value, and must compute its logic function when
// extracted and switch-level simulated.
#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "swsim/swsim.hpp"

namespace silc {
namespace {

using cells::inverter;
using cells::nand2;
using cells::nor2;
using layout::Cell;
using layout::Library;
using swsim::Val;

// ------------------------------------------------------------- DRC sweeps --

class InverterDrc : public ::testing::TestWithParam<int> {};

TEST_P(InverterDrc, CleanAcrossPullupLengths) {
  Library lib;
  Cell& c = inverter(lib, {.pullup_len = GetParam()});
  const drc::Result r = drc::check(c);
  EXPECT_TRUE(r.ok()) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(PullupSweep, InverterDrc,
                         ::testing::Values(4, 6, 8, 10, 12, 16, 20));

class Nor2Drc : public ::testing::TestWithParam<int> {};

TEST_P(Nor2Drc, CleanAcrossPullupLengths) {
  Library lib;
  Cell& c = nor2(lib, {.pullup_len = GetParam()});
  const drc::Result r = drc::check(c);
  EXPECT_TRUE(r.ok()) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(PullupSweep, Nor2Drc, ::testing::Values(4, 8, 12, 16));

class Nand2Drc : public ::testing::TestWithParam<int> {};

TEST_P(Nand2Drc, CleanAcrossPullupLengths) {
  Library lib;
  Cell& c = nand2(lib, {.pullup_len = GetParam()});
  const drc::Result r = drc::check(c);
  EXPECT_TRUE(r.ok()) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(PullupSweep, Nand2Drc, ::testing::Values(4, 8, 12, 16));

TEST(CellDrc, PassGateClean) {
  Library lib;
  const drc::Result r = drc::check(cells::pass_gate(lib));
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(CellDrc, ShiftStageClean) {
  Library lib;
  const drc::Result r = drc::check(cells::shift_stage(lib));
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(CellDrc, SuperBufferClean) {
  Library lib;
  const drc::Result r = drc::check(cells::super_buffer(lib));
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(CellDrc, BondPadClean) {
  Library lib;
  const drc::Result r = drc::check(cells::bond_pad(lib, {.size = 40}));
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(CellDrc, BadParamsRejected) {
  Library lib;
  EXPECT_THROW(inverter(lib, {.pullup_len = 2}), std::invalid_argument);
  EXPECT_THROW(inverter(lib, {.pullup_len = 5}), std::invalid_argument);
  EXPECT_THROW(cells::bond_pad(lib, {.size = 10}), std::invalid_argument);
}

// The checker itself must catch broken layouts (verifies the DRC finds what
// the generators avoid).
TEST(CellDrc, DetectsInjectedViolations) {
  Library lib;
  Cell& c = inverter(lib, {.name = "broken"});
  // A stray narrow metal sliver too close to the GND rail.
  c.add_rect(tech::Layer::Metal, {30, 8, 33, 40});
  const drc::Result r = drc::check(c);
  EXPECT_FALSE(r.ok());
  EXPECT_GT(r.count("metal."), 0u);
}

// ------------------------------------------------------------ extraction --

TEST(CellExtract, InverterDevices) {
  Library lib;
  Cell& c = inverter(lib);
  const extract::Netlist nl = extract::extract(c);
  EXPECT_TRUE(nl.warnings.empty())
      << (nl.warnings.empty() ? "" : nl.warnings.front());
  EXPECT_EQ(nl.transistors.size(), 2u);
  EXPECT_EQ(nl.enhancement_count(), 1u);
  EXPECT_EQ(nl.depletion_count(), 1u);
  EXPECT_EQ(nl.vdd_nodes.size(), 1u);
  EXPECT_EQ(nl.gnd_nodes.size(), 1u);
  EXPECT_GE(nl.find_node("in"), 0);
  EXPECT_GE(nl.find_node("out"), 0);
  // Pulldown: gate=in, channel 2x2 lambda between gnd and out.
  for (const extract::Transistor& t : nl.transistors) {
    if (t.type == extract::Device::Enhancement) {
      EXPECT_EQ(t.gate, nl.find_node("in"));
      EXPECT_EQ(t.width, 4);
      EXPECT_EQ(t.length, 4);
      const bool gnd_out = (nl.is_gnd(t.source) && t.drain == nl.find_node("out")) ||
                           (nl.is_gnd(t.drain) && t.source == nl.find_node("out"));
      EXPECT_TRUE(gnd_out);
    } else {
      // Pullup: gate tied to out, channel L = pullup_len lambda.
      EXPECT_EQ(t.gate, nl.find_node("out"));
      EXPECT_EQ(t.length, 2 * 8);
    }
  }
}

TEST(CellExtract, PassGateIsSingleEnhancement) {
  Library lib;
  const extract::Netlist nl = extract::extract(cells::pass_gate(lib));
  EXPECT_EQ(nl.transistors.size(), 1u);
  EXPECT_EQ(nl.enhancement_count(), 1u);
}

TEST(CellExtract, ShiftStageDevices) {
  Library lib;
  const extract::Netlist nl = extract::extract(cells::shift_stage(lib));
  // pass + inverter = 2 enhancement + 1 depletion.
  EXPECT_EQ(nl.transistors.size(), 3u);
  EXPECT_EQ(nl.enhancement_count(), 2u);
  EXPECT_EQ(nl.depletion_count(), 1u);
}

// ------------------------------------------------- switch-level function --

// Drive a cell's inputs through every combination and compare the output
// against the expected boolean function.
template <typename Fn>
void check_truth_table(const Cell& c, const std::vector<std::string>& ins,
                       const std::string& out, Fn&& expected) {
  const extract::Netlist nl = extract::extract(c);
  swsim::Simulator sim(nl);
  const std::size_t n = ins.size();
  for (std::size_t bits = 0; bits < (1u << n); ++bits) {
    std::vector<bool> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = ((bits >> i) & 1u) != 0;
    for (std::size_t i = 0; i < n; ++i) sim.set(ins[i], v[i]);
    ASSERT_TRUE(sim.settle());
    EXPECT_EQ(sim.get(out), swsim::from_bool(expected(v)))
        << c.name() << " inputs=" << bits;
  }
}

TEST(CellFunction, Inverter) {
  Library lib;
  check_truth_table(inverter(lib), {"in"}, "out",
                    [](const std::vector<bool>& v) { return !v[0]; });
}

TEST(CellFunction, InverterHighRatio) {
  Library lib;
  check_truth_table(inverter(lib, {.pullup_len = 16}), {"in"}, "out",
                    [](const std::vector<bool>& v) { return !v[0]; });
}

TEST(CellFunction, Nor2) {
  Library lib;
  check_truth_table(nor2(lib), {"in_a", "in_b"}, "out",
                    [](const std::vector<bool>& v) { return !(v[0] || v[1]); });
}

TEST(CellFunction, Nand2) {
  Library lib;
  check_truth_table(nand2(lib), {"in_a", "in_b"}, "out",
                    [](const std::vector<bool>& v) { return !(v[0] && v[1]); });
}

TEST(CellFunction, SuperBufferIsNonInverting) {
  Library lib;
  check_truth_table(cells::super_buffer(lib), {"in"}, "out",
                    [](const std::vector<bool>& v) { return v[0]; });
}

TEST(CellFunction, PassGateTransmitsAndIsolates) {
  Library lib;
  const extract::Netlist nl = extract::extract(cells::pass_gate(lib));
  swsim::Simulator sim(nl);
  sim.set("in", true);
  sim.set("gate", true);
  ASSERT_TRUE(sim.settle());
  EXPECT_EQ(sim.get("out"), Val::V1);
  sim.set("gate", false);
  sim.set("in", false);
  ASSERT_TRUE(sim.settle());
  // Gate off: output keeps its stored charge.
  EXPECT_EQ(sim.get("out"), Val::V1);
}

TEST(CellFunction, ShiftStageSamplesOnPhi) {
  Library lib;
  const extract::Netlist nl = extract::extract(cells::shift_stage(lib));
  swsim::Simulator sim(nl);
  sim.set("in", true);
  sim.set("phi", true);
  ASSERT_TRUE(sim.settle());
  EXPECT_EQ(sim.get("out"), Val::V0);  // inverting stage
  // Close the pass gate; output must hold even when the input flips.
  sim.set("phi", false);
  ASSERT_TRUE(sim.settle());
  sim.set("in", false);
  ASSERT_TRUE(sim.settle());
  EXPECT_EQ(sim.get("out"), Val::V0);
  // Reopen: new value propagates.
  sim.set("phi", true);
  ASSERT_TRUE(sim.settle());
  EXPECT_EQ(sim.get("out"), Val::V1);
}

// Two cascaded stages on alternate clocks = one shift-register bit.
TEST(CellFunction, TwoStageShiftRegisterBit) {
  Library lib;
  Cell& top = lib.create("sr_bit");
  Cell& stage = cells::shift_stage(lib);
  const geom::Coord pitch = 72;  // stage is 66 wide; leave rail slack
  top.add_instance(stage, {geom::Orient::R0, {0, 0}}, "s1");
  top.add_instance(stage, {geom::Orient::R0, {pitch, 0}}, "s2");
  // Abut the stages' rails and connect s1.out -> s2.in in metal.
  const Cell* s = lib.find("shift_stage");
  ASSERT_NE(s, nullptr);
  const geom::Rect out1 = s->find_port("out")->rect;                 // s1 coords
  const geom::Rect in2 = s->find_port("in")->rect.translated({pitch, 0});
  top.add_rect(tech::Layer::Metal,
               {out1.x0, out1.y0, in2.x1, out1.y1});  // straight strap
  top.add_rect(tech::Layer::Metal, {-48, 0, pitch + 18, 6});
  const geom::Rect vdd = s->find_port("vdd")->rect;
  top.add_rect(tech::Layer::Metal, {-48, vdd.y0, pitch + 18, vdd.y1});

  const extract::Netlist nl = extract::extract(top);
  swsim::Simulator sim(nl);
  const auto cycle = [&sim](bool d) {
    sim.set("s1.in", d);
    sim.set("s1.phi", true);
    sim.set("s2.phi", false);
    ASSERT_TRUE(sim.settle());
    sim.set("s1.phi", false);
    ASSERT_TRUE(sim.settle());
    sim.set("s2.phi", true);
    ASSERT_TRUE(sim.settle());
    sim.set("s2.phi", false);
    ASSERT_TRUE(sim.settle());
  };
  cycle(true);
  EXPECT_EQ(sim.get("s2.out"), Val::V1);
  cycle(false);
  EXPECT_EQ(sim.get("s2.out"), Val::V0);
  cycle(true);
  EXPECT_EQ(sim.get("s2.out"), Val::V1);
}

TEST(CellFunction, UnknownInputYieldsUnknownOutput) {
  Library lib;
  const extract::Netlist nl = extract::extract(inverter(lib));
  swsim::Simulator sim(nl);
  sim.set(nl.find_node("in"), Val::VX);
  ASSERT_TRUE(sim.settle());
  EXPECT_EQ(sim.get("out"), Val::VX);
}

}  // namespace
}  // namespace silc
