// Golden-netlist regression tests: the canonical extracted netlists of two
// committed designs — the Mead & Conway traffic-light chip and a PDP-8
// boot ROM — are checked in as fixtures/golden/*.net. Any change to
// extraction behaviour shows up as a node-level diff against the golden
// text, with the mismatching lines printed. Both extraction modes must
// match the same golden bytes, which also pins flat-vs-hier identity on
// real artwork.
//
// To regenerate after an *intentional* contract change:
//   SILC_REGEN_GOLDEN=1 ./test_extract_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/compiler.hpp"
#include "design_sources.hpp"
#include "extract/extract.hpp"
#include "mem/mem.hpp"

namespace silc::extract {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(SILC_SOURCE_DIR) + "/fixtures/golden/" + name + ".net";
}

/// The PDP-8 RIM loader (the bootstrap traditionally toggled in at 7756),
/// filled to 64 words with a deterministic 12-bit LCG — the same seed
/// content bench_drc and bench_extract array into a NOR-NOR ROM.
std::vector<std::uint32_t> pdp8_boot_words(std::size_t total) {
  std::vector<std::uint32_t> words{
      06032, 06031, 05357, 06036, 07106, 07006, 07510, 05357,
      07006, 06031, 05367, 06034, 07420, 03776, 03376, 05356,
  };
  std::uint32_t x = 0777;
  while (words.size() < total) {
    x = (x * 01645 + 0157) & 07777;  // 12-bit LCG fill
    words.push_back(x);
  }
  return words;
}

/// Compare against the committed golden text, printing a node-level
/// mismatch report (line number, expected, actual) on failure.
void expect_matches_golden(const Netlist& nl, const std::string& name) {
  const std::string text = to_text(nl);
  const std::string path = golden_path(name);
  if (std::getenv("SILC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << text;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (run with SILC_REGEN_GOLDEN=1 to create)";
  std::stringstream want;
  want << in.rdbuf();

  if (text == want.str()) return;
  std::istringstream got_s(text), want_s(want.str());
  std::string got_line, want_line, report;
  int line = 0, shown = 0;
  while (shown < 10) {
    const bool g = static_cast<bool>(std::getline(got_s, got_line));
    const bool w = static_cast<bool>(std::getline(want_s, want_line));
    if (!g && !w) break;
    ++line;
    if (!g) got_line = "<eof>";
    if (!w) want_line = "<eof>";
    if (got_line != want_line) {
      report += "  line " + std::to_string(line) + "\n    golden:  " +
                want_line + "\n    current: " + got_line + "\n";
      ++shown;
    }
    if (!g || !w) break;
  }
  ADD_FAILURE() << name << " diverges from " << path << ":\n" << report;
}

TEST(ExtractGolden, TrafficChip) {
  layout::Library lib;
  core::CompileOptions o;
  o.name = "traffic";
  o.stop_after = "assemble";
  const auto r = core::compile(lib, core::Flow::Behavioral,
                               silc_fixtures::kTrafficSource, o);
  ASSERT_NE(r.chip, nullptr) << r.diag_text();
  const Netlist hier = extract_hier(*r.chip);
  const Netlist flat = extract(*r.chip);
  EXPECT_EQ(flat, hier);  // cross-mode identity on real artwork
  EXPECT_TRUE(hier.warnings.empty());
  expect_matches_golden(hier, "traffic");
}

TEST(ExtractGolden, Pdp8BootRom) {
  layout::Library lib;
  const auto rom =
      silc::mem::generate_rom(lib, pdp8_boot_words(64), 12, {.name = "pdp8_rom"});
  ASSERT_NE(rom.cell, nullptr);
  const Netlist hier = extract_hier(*rom.cell);
  const Netlist flat = extract(*rom.cell);
  EXPECT_EQ(flat, hier);
  EXPECT_TRUE(hier.warnings.empty());
  expect_matches_golden(hier, "pdp8_rom");
}

}  // namespace
}  // namespace silc::extract
