// The staged compile pipeline: stage ordering and timing, stop_after/skip
// policy, exception capture at stage boundaries, the extract-exactly-once
// guarantee, and compile_many's thread-count-independent determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "design_sources.hpp"

namespace silc::core {
namespace {

const char* kGray2 = silc_fixtures::kGray2Source;
const char* kChain = silc_fixtures::kInvChainSource;

CompileOptions fast_verify(const std::string& name) {
  CompileOptions o;
  o.name = name;
  o.verify_cycles = 8;
  o.gate_verify_cycles = 64;
  o.gate_verify_lanes = 4;
  o.pla_verify_cycles = 32;
  return o;
}

std::vector<std::string> ran_stages(const std::vector<StageTiming>& ts) {
  std::vector<std::string> out;
  for (const StageTiming& t : ts) {
    if (t.ran) out.push_back(t.stage);
  }
  return out;
}

TEST(Pipeline, BehavioralStageOrderIsTheContract) {
  const std::vector<std::string> want = {
      "parse", "tabulate", "assemble",   "cif",       "drc",
      "extract", "gate-check", "pla-check", "artwork-check"};
  EXPECT_EQ(Pipeline::behavioral().stage_names(), want);
  const std::vector<std::string> structural = {"parse", "cif", "drc",
                                               "extract"};
  EXPECT_EQ(Pipeline::structural().stage_names(), structural);
}

TEST(Pipeline, FullRunTimesEveryStage) {
  layout::Library lib;
  const CompileResult r =
      compile(lib, Flow::Behavioral, kGray2, fast_verify("gray2"));
  EXPECT_TRUE(r.ok()) << r.diag_text();
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.timings.size(), 9u);
  for (const StageTiming& t : r.timings) {
    EXPECT_TRUE(t.ran) << t.stage;
    EXPECT_TRUE(t.ok) << t.stage;
    EXPECT_GE(t.ms, 0.0) << t.stage;
  }
  // Every stage left a note in the diagnostics stream.
  for (const char* stage : {"parse", "tabulate", "assemble", "cif", "drc",
                            "extract", "gate-check", "pla-check",
                            "artwork-check"}) {
    EXPECT_FALSE(
        std::none_of(r.diags.begin(), r.diags.end(),
                     [&](const Diag& d) { return d.stage == stage; }))
        << "no diagnostic from stage " << stage;
  }
}

TEST(Pipeline, PlaCheckModeSelectsTheEngine) {
  // Same design through all three pla-check engines: every mode passes,
  // produces the same chip, and stamps its own verdict wording into the
  // verification summary.
  CompileResult results[3];
  const sim::PlaCheckMode modes[3] = {sim::PlaCheckMode::Symbolic,
                                      sim::PlaCheckMode::Compiled,
                                      sim::PlaCheckMode::Replay};
  for (int i = 0; i < 3; ++i) {
    layout::Library lib;
    CompileOptions o = fast_verify("gray2");
    o.pla_check_mode = modes[i];
    results[i] = compile(lib, Flow::Behavioral, kGray2, o);
    ASSERT_TRUE(results[i].ok())
        << sim::to_string(modes[i]) << ": " << results[i].diag_text();
    EXPECT_TRUE(results[i].verified);
    EXPECT_EQ(results[i].cif, results[0].cif);
    EXPECT_EQ(results[i].transistors, results[0].transistors);
  }
  EXPECT_NE(results[0].verify_detail.find("symbolic proof"),
            std::string::npos) << results[0].verify_detail;
  EXPECT_NE(results[1].verify_detail.find("netlist tape"), std::string::npos)
      << results[1].verify_detail;
  EXPECT_NE(results[2].verify_detail.find("== compiled over"),
            std::string::npos) << results[2].verify_detail;
}

TEST(Pipeline, StopAfterProducesPartialArtifacts) {
  layout::Library lib;
  CompileOptions opt = fast_verify("gray2");
  opt.stop_after = "tabulate";
  DesignDB db(lib, Flow::Behavioral, kGray2, opt);
  EXPECT_TRUE(Pipeline::behavioral().run(db));
  EXPECT_TRUE(db.design.has_value());
  EXPECT_TRUE(db.fsm.has_value());
  EXPECT_EQ(db.chip, nullptr);
  EXPECT_FALSE(db.cif.has_value());
  EXPECT_EQ(ran_stages(db.timings),
            (std::vector<std::string>{"parse", "tabulate"}));
  // A partial compile is not a manufacturable result.
  EXPECT_FALSE(finish(db).ok());
}

TEST(Pipeline, SkipDropsAStageOthersStillRun) {
  layout::Library lib;
  CompileOptions opt = fast_verify("gray2");
  opt.skip = {"drc"};
  opt.stop_after = "extract";
  DesignDB db(lib, Flow::Behavioral, kGray2, opt);
  EXPECT_TRUE(Pipeline::behavioral().run(db));
  EXPECT_FALSE(db.drc.has_value());
  EXPECT_TRUE(db.has_netlist());
  EXPECT_EQ(ran_stages(db.timings),
            (std::vector<std::string>{"parse", "tabulate", "assemble", "cif",
                                      "extract"}));
}

TEST(Pipeline, StopAfterASkippedStageStillStops) {
  layout::Library lib;
  CompileOptions opt = fast_verify("gray2");
  opt.stop_after = "drc";
  opt.skip = {"drc"};
  DesignDB db(lib, Flow::Behavioral, kGray2, opt);
  EXPECT_TRUE(Pipeline::behavioral().run(db));
  EXPECT_EQ(ran_stages(db.timings),
            (std::vector<std::string>{"parse", "tabulate", "assemble", "cif"}));
  EXPECT_FALSE(db.has_netlist());  // nothing past the stop point ran
}

TEST(Pipeline, UnknownPolicyNamesAreErrors) {
  layout::Library lib;
  CompileOptions opt;
  opt.stop_after = "frobnicate";
  const CompileResult r = compile(lib, Flow::Behavioral, kGray2, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.diags.empty());
  EXPECT_EQ(r.diags[0].stage, "pipeline");
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  // Nothing ran under a bad policy.
  EXPECT_TRUE(ran_stages(r.timings).empty());
}

TEST(Pipeline, FailingCheapCheckSkipsExpensiveStages) {
  // The mechanism behind "gate-check fails -> artwork check skipped":
  // a stage returning false stops the pipeline, later stages are recorded
  // as not-run, and the failure is an error diagnostic.
  layout::Library lib;
  DesignDB db(lib, Flow::Behavioral, "", {});
  bool late_ran = false;
  Pipeline p;
  p.stage("cheap", [](DesignDB&) { return false; });
  p.stage("expensive", [&](DesignDB&) {
    late_ran = true;
    return true;
  });
  EXPECT_FALSE(p.run(db));
  EXPECT_FALSE(late_ran);
  ASSERT_EQ(db.timings.size(), 2u);
  EXPECT_TRUE(db.timings[0].ran);
  EXPECT_FALSE(db.timings[0].ok);
  EXPECT_FALSE(db.timings[1].ran);
  EXPECT_TRUE(db.diags.has_errors());  // auto-added "stage failed"
}

TEST(Pipeline, ExceptionsBecomeStageDiagnostics) {
  layout::Library lib;
  DesignDB db(lib, Flow::Behavioral, "", {});
  Pipeline p;
  p.stage("boom", [](DesignDB&) -> bool {
    throw std::runtime_error("kaboom");
  });
  p.stage("after", [](DesignDB&) { return true; });
  EXPECT_FALSE(p.run(db));
  ASSERT_EQ(db.diags.all().size(), 1u);
  EXPECT_EQ(db.diags.all()[0].severity, Severity::Error);
  EXPECT_EQ(db.diags.all()[0].stage, "boom");
  EXPECT_EQ(db.diags.all()[0].message, "kaboom");
  EXPECT_FALSE(db.timings[1].ran);
}

TEST(Pipeline, ExtractsAndFlattensExactlyOnce) {
  // Hier everywhere (the default): DRC and extraction both work cell by
  // cell, so a full compile never flattens the chip at all — and still
  // extracts at most once (transistor count + artwork check share it).
  layout::Library lib;
  DesignDB db(lib, Flow::Behavioral, kGray2, fast_verify("gray2"));
  EXPECT_TRUE(Pipeline::behavioral().run(db)) << db.diags.text();
  EXPECT_EQ(db.flatten_runs, 0);
  EXPECT_EQ(db.extract_runs, 1);
  EXPECT_TRUE(db.artwork_ok);

  // Flat modes: DRC + extraction share exactly one flatten.
  layout::Library lib2;
  CompileOptions flat_opt = fast_verify("gray2");
  flat_opt.drc_mode = drc::Mode::Flat;
  flat_opt.extract_mode = extract::Mode::Flat;
  DesignDB db2(lib2, Flow::Behavioral, kGray2, flat_opt);
  EXPECT_TRUE(Pipeline::behavioral().run(db2)) << db2.diags.text();
  EXPECT_EQ(db2.flatten_runs, 1);
  EXPECT_EQ(db2.extract_runs, 1);
  EXPECT_TRUE(db2.artwork_ok);
}

TEST(Pipeline, MalformedBehavioralSourceIsAParseDiagnostic) {
  layout::Library lib;
  SiliconCompiler cc(lib);
  CompileResult r;
  ASSERT_NO_THROW(r = cc.compile_behavioral("processor x ("));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.chip, nullptr);
  ASSERT_FALSE(r.diags.empty());
  EXPECT_EQ(r.diags[0].stage, "parse");
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
  EXPECT_NE(r.diags[0].message.find("line"), std::string::npos);
}

TEST(Pipeline, MalformedStructuralSourceIsAParseDiagnostic) {
  layout::Library lib;
  SiliconCompiler cc(lib);
  CompileResult r;
  ASSERT_NO_THROW(r = cc.compile_structural("let = nonsense ;;;"));
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.diags.empty());
  EXPECT_EQ(r.diags[0].stage, "parse");
  EXPECT_EQ(r.diags[0].severity, Severity::Error);
}

std::vector<BatchJob> demo_batch() {
  std::vector<BatchJob> jobs;
  jobs.push_back({Flow::Behavioral, kGray2, fast_verify("gray2")});
  for (int w = 2; w <= 3; ++w) {
    jobs.push_back({Flow::Behavioral, silc_fixtures::counter_source(w),
                    fast_verify("counter" + std::to_string(w))});
  }
  jobs.push_back({Flow::Structural, kChain, CompileOptions{.name = "chain"}});
  // One malformed design: the batch must carry its diagnostics, not die.
  jobs.push_back({Flow::Behavioral, "processor broken (", CompileOptions{}});
  return jobs;
}

TEST(Pipeline, CompileManyIsDeterministicAcrossThreadCounts) {
  const std::vector<BatchJob> jobs = demo_batch();
  const BatchResult one = compile_many(jobs, 1);
  const BatchResult four = compile_many(jobs, 4);
  EXPECT_EQ(one.threads, 1);
  // The ask for 4 workers is clamped to the machine: oversubscribing a
  // smaller core count was measurably slower than running serial.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  EXPECT_EQ(four.threads, hw >= 1 ? std::min(4, hw) : 4);
  ASSERT_EQ(one.results.size(), jobs.size());
  ASSERT_EQ(four.results.size(), jobs.size());
  EXPECT_EQ(one.ok_count(), 4u);  // all but the malformed job
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CompileResult& a = one.results[i];
    const CompileResult& b = four.results[i];
    EXPECT_TRUE(a.same_outcome(b)) << i << ": " << a.diag_text() << " vs "
                                   << b.diag_text();
    // Spot-check the fields same_outcome covers.
    EXPECT_EQ(a.cif, b.cif) << i;
    EXPECT_EQ(a.transistors, b.transistors) << i;
  }
}

TEST(Pipeline, BatchSharesExtractCacheAndStaysDeterministic) {
  // The batch threads one NetlistCache through every job (like the DRC
  // VerdictCache): repeated designs hit it, and results stay bit-identical
  // at any thread count — cached partial netlists are deterministic.
  std::vector<BatchJob> jobs;
  for (int rep = 0; rep < 3; ++rep) {
    jobs.push_back({Flow::Behavioral, kGray2, fast_verify("gray2")});
    jobs.push_back({Flow::Structural, kChain, CompileOptions{.name = "chain"}});
  }
  extract::NetlistCache shared;
  for (BatchJob& j : jobs) j.options.extract_cache = &shared;
  const BatchResult one = compile_many(jobs, 1);
  EXPECT_GT(shared.hits(), 0u);  // repeats hit the shared cache
  const std::uint64_t misses_after_serial = shared.misses();
  const BatchResult four = compile_many(jobs, 4);
  EXPECT_EQ(shared.misses(), misses_after_serial);  // warm across batches
  ASSERT_EQ(one.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(one.results[i].same_outcome(four.results[i])) << i;
    EXPECT_EQ(one.results[i].transistors, four.results[i].transistors) << i;
  }

  // Mode cross-check at the batch level: flat extraction compiles to the
  // same transistor counts and verification outcome as hier.
  std::vector<BatchJob> flat_jobs = jobs;
  for (BatchJob& j : flat_jobs) {
    j.options.extract_cache = nullptr;
    j.options.extract_mode = extract::Mode::Flat;
  }
  const BatchResult flat = compile_many(flat_jobs, 2);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(flat.results[i].transistors, one.results[i].transistors) << i;
    EXPECT_EQ(flat.results[i].verified, one.results[i].verified) << i;
  }
}

TEST(Pipeline, CompileManyAggregatesAStageProfile) {
  std::vector<BatchJob> jobs = demo_batch();
  jobs.pop_back();  // drop the malformed one: every stage should run
  const BatchResult br = compile_many(jobs, 2);
  EXPECT_GT(br.wall_ms, 0.0);
  ASSERT_FALSE(br.profile.empty());
  // parse ran once per job; the structural flow has no tabulate.
  const auto find = [&](const char* s) {
    const auto it = std::find_if(
        br.profile.begin(), br.profile.end(),
        [&](const StageProfile& p) { return p.stage == s; });
    EXPECT_NE(it, br.profile.end()) << s;
    return it == br.profile.end() ? StageProfile{} : *it;
  };
  EXPECT_EQ(find("parse").runs, static_cast<int>(jobs.size()));
  EXPECT_EQ(find("tabulate").runs, static_cast<int>(jobs.size()) - 1);
  EXPECT_EQ(find("artwork-check").runs, static_cast<int>(jobs.size()) - 1);
  EXPECT_FALSE(br.profile_text().empty());
  // Chips stay alive: the batch owns the libraries the cells live in.
  for (std::size_t i = 0; i + 1 < jobs.size(); ++i) {
    ASSERT_NE(br.results[i].chip, nullptr) << i;
    EXPECT_GT(br.results[i].chip->flat_shape_count(), 0u) << i;
  }
}

TEST(Pipeline, TimingsCoverEverySlotWhateverThePolicy) {
  // Skipped and unreached stages still get a timing entry: the timings
  // are a complete per-slot account, not just a log of what ran.
  layout::Library lib;
  CompileOptions opt = fast_verify("gray2");
  opt.skip = {"drc"};
  opt.stop_after = "extract";
  DesignDB db(lib, Flow::Behavioral, kGray2, opt);
  EXPECT_TRUE(Pipeline::behavioral().run(db));
  ASSERT_EQ(db.timings.size(), 9u);
  for (const StageTiming& t : db.timings) {
    if (t.stage == "drc") {
      EXPECT_TRUE(t.skipped);
      EXPECT_FALSE(t.ran);
    } else if (t.stage == "gate-check" || t.stage == "pla-check" ||
               t.stage == "artwork-check") {
      EXPECT_FALSE(t.ran) << t.stage;  // past stop_after
      EXPECT_FALSE(t.skipped) << t.stage;
      EXPECT_EQ(t.ms, 0.0) << t.stage;
    } else {
      EXPECT_TRUE(t.ran) << t.stage;
      EXPECT_FALSE(t.skipped) << t.stage;
    }
  }
}

TEST(Pipeline, PolicyErrorStillEmitsEveryTimingSlot) {
  layout::Library lib;
  CompileOptions opt;
  opt.skip = {"no-such-stage"};
  const CompileResult r = compile(lib, Flow::Behavioral, kGray2, opt);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.timings.size(), 9u);  // every slot, all unreached
  for (const StageTiming& t : r.timings) {
    EXPECT_FALSE(t.ran) << t.stage;
    EXPECT_FALSE(t.skipped) << t.stage;
  }
}

TEST(Pipeline, StageTimingsSumToThePipelineWallClock) {
  layout::Library lib;
  const CompileResult r =
      compile(lib, Flow::Behavioral, kGray2, fast_verify("gray2"));
  EXPECT_TRUE(r.ok()) << r.diag_text();
  EXPECT_GT(r.pipeline_ms, 0.0);
  double stage_sum = 0;
  for (const StageTiming& t : r.timings) stage_sum += t.ms;
  // The stage timings account for the whole run: nothing substantial
  // happens outside them (policy validation is the only other work).
  EXPECT_LE(stage_sum, r.pipeline_ms);
  EXPECT_GT(stage_sum, 0.9 * r.pipeline_ms);
}

TEST(Pipeline, CompileResultCarriesAMetricsSnapshot) {
  layout::Library lib;
  const CompileResult r =
      compile(lib, Flow::Behavioral, kGray2, fast_verify("gray2"));
  EXPECT_TRUE(r.ok()) << r.diag_text();
  if (!obs::kEnabled) {
    EXPECT_TRUE(r.metrics.empty());
    return;
  }
  // A full hier-mode compile must at least have touched the DRC and
  // extraction caches; nonzero entries only.
  EXPECT_FALSE(r.metrics.empty());
  const auto has = [&](const std::string& name) {
    return std::any_of(r.metrics.begin(), r.metrics.end(),
                       [&](const obs::MetricSample& s) {
                         return s.name == name && s.value != 0;
                       });
  };
  EXPECT_TRUE(has("drc.cache.misses"));
  EXPECT_TRUE(has("extract.cache.misses"));
  EXPECT_TRUE(has("drc.cells"));
  EXPECT_TRUE(has("extract.cells"));
  for (const obs::MetricSample& s : r.metrics) {
    EXPECT_NE(s.value, 0) << s.name;
  }
}

}  // namespace
}  // namespace silc::core
