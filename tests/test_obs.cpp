// The observability layer: span/begin-end/instant recording into
// per-thread buffers, drop accounting at capacity, the metrics registry
// and snapshot deltas, latency-budget parsing and enforcement, the Chrome
// trace-event exporter (checked with a real JSON parser), and — the part
// the whole layer exists to guarantee — that tracing a multi-threaded
// compile_many batch changes nothing about its results while every span
// it records stays well-nested per thread.
//
// Every test here also runs in the SILC_OBS=OFF build (scripts/ci.sh
// builds and tests both): the tracer must then refuse to enable and
// record nothing, while metrics, budgets, and the exporter — plain code,
// not gated — keep working. Tests branch on obs::kEnabled instead of
// skipping so the no-op path is asserted, not ignored.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.hpp"
#include "design_sources.hpp"
#include "obs/obs.hpp"

namespace silc::obs {
namespace {

// ----------------------------------------------------------------- tracer --

TEST(Tracer, SpansRecordCompleteEventsThatNest) {
  Tracer& t = Tracer::global();
  t.enable();
  if (!kEnabled) {
    // Compiled out: enable() must refuse and spans must record nothing.
    EXPECT_FALSE(t.enabled());
    { SILC_OBS_SPAN("outer", "test"); }
    EXPECT_EQ(t.total_events(), 0u);
    return;
  }
  EXPECT_TRUE(t.enabled());
  {
    Span outer("outer", "test");
    { Span inner("inner", "test"); }
  }
  t.disable();
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.total_events(), 2u);

  const std::vector<Tracer::ThreadEvents> threads = t.drain();
  ASSERT_EQ(threads.size(), 1u);
  const std::vector<Event>& ev = threads[0].events;
  ASSERT_EQ(ev.size(), 2u);
  // Complete events land at destruction time: inner ends first.
  EXPECT_STREQ(ev[0].name, "inner");
  EXPECT_STREQ(ev[1].name, "outer");
  for (const Event& e : ev) {
    EXPECT_EQ(e.type, Event::Type::Complete);
    EXPECT_STREQ(e.cat, "test");
  }
  // inner's interval sits inside outer's.
  EXPECT_LE(ev[1].ts_ns, ev[0].ts_ns);
  EXPECT_LE(ev[0].ts_ns + ev[0].dur_ns, ev[1].ts_ns + ev[1].dur_ns);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer& t = Tracer::global();
  t.enable();
  t.instant("while-enabled", "test");
  t.disable();
  const std::uint64_t before = t.total_events();
  EXPECT_EQ(before, kEnabled ? 1u : 0u);
  {
    SILC_OBS_SPAN("dark", "test");
    SILC_OBS_INSTANT("dark.instant", "test");
    t.begin("dark.work", "test");
    t.end("dark.work", "test");
    t.counter("dark.gauge", "test", 42.0);
  }
  EXPECT_EQ(t.total_events(), before);
  EXPECT_EQ(t.dropped_events(), 0u);
}

TEST(Tracer, BeginEndLandOnTheCallingThread) {
  if (!kEnabled) return;  // recording asserted impossible above
  Tracer& t = Tracer::global();
  t.enable();
  t.begin("main.work", "test");
  t.instant("main.mid", "test");
  t.end("main.work", "test");
  std::thread worker([&t] {
    t.begin("worker.work", "test");
    t.end("worker.work", "test");
  });
  worker.join();
  t.disable();

  const std::vector<Tracer::ThreadEvents> threads = t.drain();
  ASSERT_EQ(threads.size(), 2u);  // main + the worker, separate buffers
  for (const Tracer::ThreadEvents& te : threads) {
    // Each buffer holds its own thread's matched begin/end pair only.
    std::vector<std::string> stack;
    for (const Event& e : te.events) {
      if (e.type == Event::Type::Begin) {
        stack.emplace_back(e.name);
      } else if (e.type == Event::Type::End) {
        ASSERT_FALSE(stack.empty()) << "end without begin on tid " << te.tid;
        EXPECT_EQ(stack.back(), e.name) << "tid " << te.tid;
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed begin on tid " << te.tid;
  }
  // Timestamps are monotone within a buffer (single writer, steady clock).
  for (const Tracer::ThreadEvents& te : threads) {
    for (std::size_t i = 1; i < te.events.size(); ++i) {
      EXPECT_GE(te.events[i].ts_ns, te.events[i - 1].ts_ns);
    }
  }
}

TEST(Tracer, DropsAreCountedAndThePrefixIsPreserved) {
  if (!kEnabled) return;
  Tracer& t = Tracer::global();
  t.enable(/*max_events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    t.instant("i" + std::to_string(i), "test");
  }
  t.disable();
  EXPECT_EQ(t.total_events(), 4u);
  EXPECT_EQ(t.dropped_events(), 6u);

  const std::vector<Tracer::ThreadEvents> threads = t.drain();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 4u);
  EXPECT_EQ(threads[0].dropped, 6u);
  // Drop-newest keeps the oldest prefix intact.
  for (int i = 0; i < 4; ++i) {
    EXPECT_STREQ(threads[0].events[static_cast<std::size_t>(i)].name,
                 ("i" + std::to_string(i)).c_str());
  }

  // Re-enabling starts a fresh capture: buffers and drop counts clear.
  t.enable();
  t.disable();
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_EQ(t.dropped_events(), 0u);
}

TEST(Tracer, OverlongNamesAreTruncatedNotOverrun) {
  if (!kEnabled) return;
  const std::string longname(3 * Event::kNameCap, 'x');
  Tracer& t = Tracer::global();
  t.enable();
  { Span s(longname, "test"); }
  t.disable();
  const std::vector<Tracer::ThreadEvents> threads = t.drain();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].events.size(), 1u);
  const Event& e = threads[0].events[0];
  EXPECT_EQ(std::strlen(e.name), Event::kNameCap);
  EXPECT_EQ(std::string_view(e.name), longname.substr(0, Event::kNameCap));
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, CountersAccumulateAndSnapshotSorted) {
  Metrics& m = Metrics::global();
  std::atomic<long long>& a = m.counter("obstest.a");
  const long long a0 = a.load();
  a.fetch_add(3);
  m.add("obstest.b", 5);
  m.add("obstest.b", 2);
  // Same name resolves to the same counter, not a new registration.
  EXPECT_EQ(&m.counter("obstest.a"), &a);
  EXPECT_EQ(a.load(), a0 + 3);

  const std::vector<MetricSample> snap = m.snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const MetricSample& x, const MetricSample& y) {
        return x.name < y.name;
      }));
  const auto find = [&](std::string_view name) -> long long {
    for (const MetricSample& s : snap) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << name << " missing from snapshot";
    return -1;
  };
  EXPECT_EQ(find("obstest.a"), a0 + 3);
  EXPECT_EQ(find("obstest.b"), 7);
}

TEST(Metrics, DeltaKeepsOnlyWhatChanged) {
  const std::vector<MetricSample> before = {{"a", 1}, {"b", 2}, {"d", 9}};
  const std::vector<MetricSample> after = {{"a", 1}, {"b", 5}, {"c", 3}};
  const std::vector<MetricSample> d = delta(before, after);
  // "a" unchanged -> dropped; "c" born after `before` -> counts from zero;
  // "d" absent from `after` (no registry ever forgets, but delta is pure
  // data) -> simply not reported.
  const std::vector<MetricSample> want = {{"b", 3}, {"c", 3}};
  EXPECT_EQ(d, want);
}

// ---------------------------------------------------------------- budgets --

TEST(Budgets, ParsesMarginCommentsAndStages) {
  std::string err;
  const auto table = parse_budgets(
      "# smoke-mode budgets\n"
      "margin 2\n"
      "\n"
      "parse  0.5   # trailing comment\n"
      "drc    12.0\n",
      &err);
  ASSERT_TRUE(table.has_value()) << err;
  EXPECT_DOUBLE_EQ(table->margin, 2.0);
  ASSERT_EQ(table->budgets.size(), 2u);
  ASSERT_NE(table->find("parse"), nullptr);
  EXPECT_DOUBLE_EQ(table->find("parse")->ms_per_run, 0.5);
  ASSERT_NE(table->find("drc"), nullptr);
  EXPECT_DOUBLE_EQ(table->find("drc")->ms_per_run, 12.0);
  EXPECT_EQ(table->find("extract"), nullptr);
}

TEST(Budgets, RejectsMalformedTablesWithAnError) {
  const char* bad[] = {
      "parse\n",                 // missing number
      "parse abc\n",             // non-numeric
      "parse 1 extra\n",         // trailing token
      "parse -1\n",              // negative budget
      "parse 1\nparse 2\n",      // duplicate stage
      "margin 0\nparse 1\n",     // margin must be positive
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(parse_budgets(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
  std::string err;
  EXPECT_FALSE(load_budgets("/nonexistent/budgets.txt", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Budgets, EmptyTablesAndFilesFailLoudly) {
  // A budget table with no stage budgets would silently pass every stage —
  // a truncated or blank file must disarm CI loudly, not quietly.
  const char* empty_ish[] = {
      "",
      "# only comments\n",
      "margin 2\n",  // a margin but nothing to apply it to
  };
  for (const char* text : empty_ish) {
    std::string err;
    EXPECT_FALSE(parse_budgets(text, &err).has_value()) << '"' << text << '"';
    EXPECT_FALSE(err.empty()) << '"' << text << '"';
  }

  const std::string path = testing::TempDir() + "/silc_empty_budgets.txt";
  { std::ofstream out(path); }  // create empty
  std::string err;
  EXPECT_FALSE(load_budgets(path, &err).has_value());
  EXPECT_NE(err.find("empty or unreadable"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(Budgets, CheckFlagsOverAndUnbudgetedStages) {
  BudgetTable table;
  table.margin = 1.5;
  table.budgets = {{"a", 10.0}, {"b", 1.0}, {"unprofiled", 5.0}};
  const std::vector<std::pair<std::string, double>> profile = {
      {"a", 14.0},  // under 10 * 1.5
      {"b", 2.0},   // over 1 * 1.5
      {"c", 0.01},  // not in the table at all
  };
  const std::vector<BudgetVerdict> v = check_budgets(table, profile);
  ASSERT_EQ(v.size(), 3u);  // budgeted-but-unprofiled stages are ignored

  EXPECT_EQ(v[0].stage, "a");
  EXPECT_DOUBLE_EQ(v[0].limit_ms, 15.0);
  EXPECT_TRUE(v[0].ok());

  EXPECT_EQ(v[1].stage, "b");
  EXPECT_DOUBLE_EQ(v[1].limit_ms, 1.5);
  EXPECT_TRUE(v[1].over);
  EXPECT_FALSE(v[1].ok());

  EXPECT_EQ(v[2].stage, "c");
  EXPECT_TRUE(v[2].unbudgeted);
  EXPECT_FALSE(v[2].ok());

  EXPECT_FALSE(budgets_ok(v));
  const std::string report = budget_report(v);
  EXPECT_NE(report.find("OVER BUDGET"), std::string::npos);
  EXPECT_NE(report.find("NO BUDGET"), std::string::npos);
  EXPECT_NE(report.find("ok"), std::string::npos);

  // An all-green profile is ok.
  EXPECT_TRUE(budgets_ok(check_budgets(table, {{"a", 1.0}, {"b", 1.0}})));
}

// ----------------------------------------------------------------- export --

// Minimal recursive-descent JSON syntax checker: enough to prove the
// exporter emits well-formed JSON (string escaping included) without
// taking a JSON-library dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(TraceExport, TheCheckerItselfTellsGoodJsonFromBad) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,-2.5,"x\n\"y\""],"b":{}})").valid());
  EXPECT_TRUE(JsonChecker("{\"traceEvents\":[]}\n").valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").valid());
  EXPECT_FALSE(JsonChecker("{\"a\":\"unterminated}").valid());
  EXPECT_FALSE(JsonChecker("{\"a\":\"raw\ncontrol\"}").valid());
  EXPECT_FALSE(JsonChecker("[1,2]]").valid());
}

TEST(TraceExport, ChromeTraceJsonIsWellFormedWithEveryEventKind) {
  Tracer& t = Tracer::global();
  t.enable();
  if (kEnabled) {
    { SILC_OBS_SPAN("span \"quoted\" \\slashed\\", "test"); }
    t.begin("phase", "test");
    t.instant("tick\nnewline", "test");
    t.counter("gauge", "test", 2.5);
    t.end("phase", "test");
  }
  t.disable();
  Metrics::global().add("obstest.export", 1);

  const std::string json = chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // The metrics snapshot rides along whatever the build.
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"obstest.export\""), std::string::npos);
  if (kEnabled) {
    for (const char* ph : {"\"ph\":\"X\"", "\"ph\":\"B\"", "\"ph\":\"E\"",
                           "\"ph\":\"i\"", "\"ph\":\"C\"", "\"ph\":\"M\""}) {
      EXPECT_NE(json.find(ph), std::string::npos) << ph;
    }
  } else {
    EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  }
}

TEST(TraceExport, WriteChromeTraceProducesAReadableFile) {
  const std::string path = ::testing::TempDir() + "silc_obs_trace.json";
  Tracer& t = Tracer::global();
  t.enable();
  { SILC_OBS_SPAN("file.span", "test"); }
  t.disable();
  ASSERT_TRUE(write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_TRUE(JsonChecker(text.str()).valid());
  EXPECT_FALSE(write_chrome_trace("/nonexistent-dir/trace.json"));
  std::remove(path.c_str());
}

// ------------------------------------------------- tracing a real batch --

std::vector<core::BatchJob> traced_batch() {
  core::CompileOptions fast;
  fast.verify_cycles = 8;
  fast.gate_verify_cycles = 64;
  fast.gate_verify_lanes = 4;
  fast.pla_verify_cycles = 32;
  std::vector<core::BatchJob> jobs;
  core::CompileOptions g = fast;
  g.name = "gray2";
  jobs.push_back({core::Flow::Behavioral, silc_fixtures::kGray2Source, g});
  core::CompileOptions c = fast;
  c.name = "counter2";
  jobs.push_back(
      {core::Flow::Behavioral, silc_fixtures::counter_source(2), c});
  jobs.push_back({core::Flow::Structural, silc_fixtures::kInvChainSource,
                  core::CompileOptions{.name = "chain"}});
  return jobs;
}

/// Every Complete event on one thread, checked for proper nesting: sort
/// by (start asc, end desc) and sweep with a stack — any interval that
/// overlaps the enclosing open span without being contained by it fails.
void expect_spans_well_nested(const std::vector<Event>& events,
                              std::uint32_t tid) {
  struct Interval {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::string name;
  };
  std::vector<Interval> iv;
  for (const Event& e : events) {
    if (e.type == Event::Type::Complete) {
      iv.push_back({e.ts_ns, e.ts_ns + e.dur_ns, e.name});
    }
  }
  std::stable_sort(iv.begin(), iv.end(),
                   [](const Interval& a, const Interval& b) {
                     if (a.begin != b.begin) return a.begin < b.begin;
                     return a.end > b.end;
                   });
  std::vector<const Interval*> open;
  for (const Interval& i : iv) {
    while (!open.empty() && open.back()->end <= i.begin) open.pop_back();
    if (!open.empty()) {
      EXPECT_LE(i.end, open.back()->end)
          << "span '" << i.name << "' on tid " << tid << " overlaps '"
          << open.back()->name << "' without nesting inside it";
    }
    open.push_back(&i);
  }
}

TEST(Tracing, BatchResultsAreIdenticalTracedOrNotAndAcrossThreadCounts) {
  const std::vector<core::BatchJob> jobs = traced_batch();

  // Baseline: the same batch with the tracer off.
  const core::BatchResult untraced = core::compile_many(jobs, 1);
  ASSERT_EQ(untraced.results.size(), jobs.size());
  EXPECT_EQ(untraced.ok_count(), jobs.size());

  Tracer& t = Tracer::global();
  t.enable(1u << 16);
  const core::BatchResult one = core::compile_many(jobs, 1);
  const core::BatchResult four = core::compile_many(jobs, 4);
  t.disable();

  ASSERT_EQ(one.results.size(), jobs.size());
  ASSERT_EQ(four.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Tracing must be an observer: bit-identical output with it on, at
    // any worker count.
    EXPECT_TRUE(untraced.results[i].same_outcome(one.results[i])) << i;
    EXPECT_TRUE(one.results[i].same_outcome(four.results[i])) << i;
    EXPECT_EQ(one.results[i].cif, four.results[i].cif) << i;
    EXPECT_EQ(untraced.results[i].cif, one.results[i].cif) << i;
  }

  if (!kEnabled) {
    EXPECT_EQ(t.total_events(), 0u);
    return;
  }

  EXPECT_GT(t.total_events(), 0u);
  EXPECT_EQ(t.dropped_events(), 0u);

  const std::vector<Tracer::ThreadEvents> threads = t.drain();
  ASSERT_FALSE(threads.empty());
  std::size_t spans = 0;
  std::size_t stage_spans = 0;
  for (const Tracer::ThreadEvents& te : threads) {
    expect_spans_well_nested(te.events, te.tid);
    // Begin/end (if any instrumentation uses the explicit form) must be
    // matched, LIFO, per thread.
    std::vector<std::string> open;
    for (const Event& e : te.events) {
      if (e.type == Event::Type::Complete) {
        ++spans;
        if (std::string_view(e.cat) == "stage") ++stage_spans;
      } else if (e.type == Event::Type::Begin) {
        open.emplace_back(e.name);
      } else if (e.type == Event::Type::End) {
        ASSERT_FALSE(open.empty()) << "tid " << te.tid;
        EXPECT_EQ(open.back(), e.name) << "tid " << te.tid;
        open.pop_back();
      }
    }
    EXPECT_TRUE(open.empty()) << "unclosed begin on tid " << te.tid;
  }
  // Both traced batches ran every pipeline stage under a "stage" span:
  // 9 behavioral + 9 behavioral + 4 structural, twice.
  EXPECT_GE(spans, stage_spans);
  EXPECT_EQ(stage_spans, 2u * (9u + 9u + 4u));

  // And the full capture still exports as valid JSON.
  EXPECT_TRUE(JsonChecker(chrome_trace_json()).valid());
}

}  // namespace
}  // namespace silc::obs
