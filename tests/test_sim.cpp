// Compiled-simulator tests: levelization order, 64-lane bit-parallel
// semantics, two-phase register hold/commit, the batch run() API, and the
// three-model crosscheck (behavioral / compiled / switch-level) on the
// counter and traffic-light designs plus a PDP-8 program run.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>

#include "extract/extract.hpp"
#include "logic/logic.hpp"
#include "net/net.hpp"
#include "pdp8_model.hpp"
#include "pla/pla.hpp"
#include "rtl/rtl.hpp"
#include "sim/sim.hpp"
#include "synth/synth.hpp"

namespace silc::sim {
namespace {

const char* kCounter = R"(
  processor counter (input reset; output value<3>;) {
    reg count<3>;
    value = count;
    always { if (reset) count := 0; else count := count + 1; }
  })";

const char* kAdder = R"(
  processor adder (input a<6>; input b<6>; output sum<6>; output carry;) {
    wire wide<7>;
    wide = {0b0, a} + {0b0, b};
    sum = wide[5:0];
    carry = wide[6];
  })";

const char* kTraffic = R"(
  processor traffic (input car; output hw<2>; output farm<2>;) {
    reg st<2>;
    reg timer<2>;
    hw = st;
    farm = timer;
    always {
      case (st) {
        0: if (car) { st := 1; timer := 0; }
        1: { if (timer == 3) st := 2; timer := timer + 1; }
        2: if (timer == 0) { st := 3; } else { timer := timer - 1; }
        3: st := 0;
      }
    }
  })";

// ------------------------------------------------------------- levelize --

TEST(Levelize, OrdersOpsByLevelAndDecomposesNary) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  const int n1 = nl.add_gate(net::GateKind::And, {a, b}, "n1");
  const int n2 = nl.add_gate(net::GateKind::Not, {n1}, "n2");
  const int q = nl.add_net("q");
  nl.add_gate_driving(net::GateKind::Dff, {n2}, q, "q");
  nl.add_gate(net::GateKind::Xor, {q, a, b}, "y");  // 3-ary: decomposes

  const Tape tape = levelize(nl);
  EXPECT_EQ(tape.depth(), 2);
  // 4 gates -> and + not + (xor chain of 2) = 4 ops; dff is a commit.
  EXPECT_EQ(tape.ops.size(), 4u);
  ASSERT_EQ(tape.level_begin.size(), 3u);
  EXPECT_EQ(tape.level_begin.front(), 0u);
  EXPECT_EQ(tape.level_begin.back(), tape.ops.size());
  ASSERT_EQ(tape.dffs.size(), 1u);
  EXPECT_EQ(tape.dffs[0].first, static_cast<std::uint32_t>(q));
  EXPECT_EQ(tape.dffs[0].second, static_cast<std::uint32_t>(n2));
  // One temp slot for the xor chain.
  EXPECT_EQ(tape.slots, nl.net_count() + 1);

  // Tape validity: every op reads only source slots (inputs, DFF outputs)
  // or slots written by an earlier op; no slot is written twice.
  const std::vector<int> driver = nl.driver_map();
  std::vector<bool> written(tape.slots, false);
  const auto is_source = [&](std::uint32_t s) {
    if (s >= nl.net_count()) return false;  // temp: must be written first
    const int d = driver[s];
    return d < 0 || nl.gate(d).kind == net::GateKind::Dff;
  };
  for (const TapeOp& op : tape.ops) {
    if (op.code != TapeOp::Code::Const0 && op.code != TapeOp::Code::Const1) {
      EXPECT_TRUE(is_source(op.a) || written[op.a]);
      if (op.code != TapeOp::Code::Copy && op.code != TapeOp::Code::Not) {
        EXPECT_TRUE(is_source(op.b) || written[op.b]);
      }
      if (op.code == TapeOp::Code::Mux) {
        EXPECT_TRUE(is_source(op.sel) || written[op.sel]);
      }
    }
    EXPECT_FALSE(written[op.out]);
    written[op.out] = true;
  }
}

TEST(Levelize, DepthMatchesRippleCarry) {
  // A 6-bit ripple adder has a long carry chain: depth grows with width.
  const rtl::Design d = rtl::parse(kAdder);
  const Tape tape = levelize(synth::bit_blast(d));
  EXPECT_GE(tape.depth(), 6);
  EXPECT_TRUE(tape.dffs.empty());
}

TEST(Levelize, RejectsCombinationalCycle) {
  net::Netlist nl;
  const int a = nl.add_net("a");
  const int b = nl.add_net("b");
  nl.add_gate_driving(net::GateKind::Not, {a}, b, "g1");
  nl.add_gate_driving(net::GateKind::Not, {b}, a, "g2");
  EXPECT_THROW(levelize(nl), std::runtime_error);
}

// ------------------------------------------------------ bare-name aliases --

TEST(BitBlastAliases, OneBitSignalsAnswerToBothNames) {
  const rtl::Design d = rtl::parse(kCounter);
  const net::Netlist nl = synth::bit_blast(d);
  EXPECT_GE(nl.find_net("reset"), 0);
  EXPECT_EQ(nl.find_net("reset"), nl.find_net("reset[0]"));
  const rtl::Design a = rtl::parse(kAdder);
  const net::Netlist anl = synth::bit_blast(a);
  EXPECT_GE(anl.find_net("carry"), 0);
  EXPECT_EQ(anl.find_net("carry"), anl.find_net("carry[0]"));
}

// ----------------------------------------------------- 64-lane semantics --

TEST(Lanes, SixtyFourIndependentAdderVectors) {
  const rtl::Design d = rtl::parse(kAdder);
  CompiledSim cs(d);
  for (int lane = 0; lane < kLanes; ++lane) {
    cs.poke_lane(lane, "a", static_cast<std::uint64_t>(lane));
    cs.poke_lane(lane, "b", static_cast<std::uint64_t>((lane * 7 + 3) & 63));
  }
  cs.eval();
  for (int lane = 0; lane < kLanes; ++lane) {
    const std::uint64_t a = static_cast<std::uint64_t>(lane);
    const std::uint64_t b = static_cast<std::uint64_t>((lane * 7 + 3) & 63);
    EXPECT_EQ(cs.peek_lane(lane, "sum"), (a + b) & 63) << "lane " << lane;
    EXPECT_EQ(cs.peek_lane(lane, "carry"), (a + b) >> 6) << "lane " << lane;
  }
}

TEST(Lanes, PokeBroadcastsPokeLaneIsolates) {
  const rtl::Design d = rtl::parse(kAdder);
  CompiledSim cs(d);
  cs.poke("a", 5);
  cs.poke("b", 1);
  cs.poke_lane(9, "b", 60);
  EXPECT_EQ(cs.peek_lane(0, "sum"), 6u);
  EXPECT_EQ(cs.peek_lane(63, "sum"), 6u);
  EXPECT_EQ(cs.peek_lane(9, "sum"), (5u + 60u) & 63u);
  EXPECT_EQ(cs.peek_lane(9, "carry"), 1u);
}

// ------------------------------------------------- register hold / commit --

TEST(Registers, EvalHoldsStateStepCommits) {
  const rtl::Design d = rtl::parse(kCounter);
  CompiledSim cs(d);
  cs.reset();
  cs.poke("reset", 0);
  for (int i = 0; i < 4; ++i) {
    cs.eval();  // combinational settle only: state must hold
    EXPECT_EQ(cs.peek("value"), 0u);
  }
  cs.step();
  EXPECT_EQ(cs.peek("value"), 1u);
  cs.step(5);
  EXPECT_EQ(cs.peek("value"), 6u);
  cs.poke("reset", 1);
  cs.step();
  EXPECT_EQ(cs.peek("value"), 0u);
}

TEST(Registers, TwoPhaseCommitSwapsRegisterPair) {
  // r1 := r2; r2 := r1 every cycle: correct only if all D values are
  // gathered before any Q is written.
  const rtl::Design d = rtl::parse(R"(
    processor swap (input dummy; output x; output y;) {
      reg r1; reg r2;
      x = r1;
      y = r2;
      always { r1 := r2; r2 := r1; }
    })");
  CompiledSim cs(d);
  cs.poke("r1", 1);  // force register state directly
  cs.poke("r2", 0);
  cs.poke("dummy", 0);
  cs.step();
  EXPECT_EQ(cs.peek("x"), 0u);
  EXPECT_EQ(cs.peek("y"), 1u);
  cs.step();
  EXPECT_EQ(cs.peek("x"), 1u);
  EXPECT_EQ(cs.peek("y"), 0u);
}

TEST(Registers, UnassignedRegisterHolds) {
  const rtl::Design d = rtl::parse(R"(
    processor hold (input dummy; output v<4>;) {
      reg keep<4>;
      v = keep;
      always { if (0) keep := 0; }
    })");
  CompiledSim cs(d);
  cs.poke("keep", 9);
  cs.poke("dummy", 0);
  cs.step(3);
  EXPECT_EQ(cs.peek("v"), 9u);
}

// ------------------------------------------------------------- batch run --

TEST(Run, BatchLanesMatchBehavioralPerSequence) {
  const rtl::Design d = rtl::parse(kCounter);
  CompiledSim cs(d);
  std::vector<Trace> stimuli;
  for (int l = 0; l < 8; ++l) {
    stimuli.push_back(random_stimulus(d, 40, 100u + static_cast<unsigned>(l)));
  }
  const std::vector<Trace> got = cs.run(stimuli);
  ASSERT_EQ(got.size(), 8u);
  for (int l = 0; l < 8; ++l) {
    rtl::BehavioralSim b(d);
    for (std::size_t c = 0; c < 40; ++c) {
      for (const auto& [name, v] : stimuli[l][c]) b.set(name, v);
      b.tick();
      ASSERT_EQ(got[l][c].at("value"), b.get("value"))
          << "lane " << l << " cycle " << c;
    }
  }
}

// ---------------------------------------------------- switch-level lowering --

TEST(SwitchLevel, RejectsReservedNetNames) {
  net::Netlist nl;
  const int a = nl.add_input("phi1");  // would shadow the clock node
  nl.add_gate(net::GateKind::Not, {a}, "y");
  EXPECT_THROW(to_switch_level(nl), std::runtime_error);
}

// --------------------------------------------------------------- VCD dump --

TEST(Vcd, EmitsScopesVarsAndChangeOnlyValues) {
  Trace ref{{{"state", 0}, {"go", 1}},
            {{"state", 5}, {"go", 1}},
            {{"state", 5}, {"go", 0}}};
  Trace dut{{{"state", 0}, {"go", 1}},
            {{"state", 4}, {"go", 1}},
            {{"state", 4}, {"go", 0}}};
  const std::string vcd =
      to_vcd({{"behavioral", ref}, {"compiled", dut}}, {{"state", 3}});

  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module behavioral $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module compiled $end"), std::string::npos);
  // Declared width wins for "state", inferred width for "go".
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 3"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("b101 "), std::string::npos);  // ref state 5
  EXPECT_NE(vcd.find("b100 "), std::string::npos);  // dut state 4
  // Change-only: ref "state" emits twice (0 then 5), not three times.
  std::size_t count = 0;
  for (std::size_t p = vcd.find("b101 "); p != std::string::npos;
       p = vcd.find("b101 ", p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Vcd, DumpWritesAFile) {
  Trace t{{{"x", 1}}, {{"x", 0}}};
  const std::string path = testing::TempDir() + "silc_sim_test.vcd";
  ASSERT_TRUE(dump_vcd(path, {{"dut", t}}));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("$var wire 1"), std::string::npos);
  EXPECT_NE(ss.str().find("$scope module dut"), std::string::npos);
}

// ----------------------------------------------------------- PLA check --

logic::PlaTerms programmed_personality(const synth::TabulatedFsm& fsm) {
  // What pla::generate programs: minimized covers of each output's
  // complement (both planes are NOR arrays).
  return logic::minimize_multi(pla::complement(fsm.function));
}

TEST(PlaCheck, CounterPersonalityProvenSymbolically) {
  const rtl::Design d = rtl::parse(kCounter);
  const synth::TabulatedFsm fsm = synth::tabulate(d);
  const PlaCheckReport r =
      check_pla(d, fsm, programmed_personality(fsm), 64, 8);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.mode, PlaCheckMode::Symbolic);
  EXPECT_TRUE(r.proven);
  EXPECT_GT(r.terms, 0u);
  // The proof does not sample cycles or lanes at all.
  EXPECT_EQ(r.cycles, 0);
  EXPECT_EQ(r.lanes, 0);
  EXPECT_NE(r.detail.find("symbolic proof"), std::string::npos) << r.detail;
}

TEST(PlaCheck, CompiledNetlistDiffRunsEveryLane) {
  const rtl::Design d = rtl::parse(kTraffic);
  const synth::TabulatedFsm fsm = synth::tabulate(d);
  const PlaCheckReport r = check_pla(d, fsm, programmed_personality(fsm), 48,
                                     0, 1, {}, PlaCheckMode::Compiled);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.mode, PlaCheckMode::Compiled);
  EXPECT_FALSE(r.proven);  // sampling, not proof
  EXPECT_EQ(r.cycles, 48);
  EXPECT_EQ(r.lanes, lanes_of(widest_word()));
  EXPECT_NE(r.detail.find("netlist tape"), std::string::npos) << r.detail;
}

TEST(PlaCheck, AllThreeModesAgreeOnCommittedDesigns) {
  for (const char* src : {kCounter, kTraffic}) {
    const rtl::Design d = rtl::parse(src);
    const synth::TabulatedFsm fsm = synth::tabulate(d);
    const logic::PlaTerms p = programmed_personality(fsm);
    for (const PlaCheckMode mode : {PlaCheckMode::Symbolic,
                                    PlaCheckMode::Compiled,
                                    PlaCheckMode::Replay}) {
      const PlaCheckReport r = check_pla(d, fsm, p, 64, 8, 1, {}, mode);
      EXPECT_TRUE(r.ok) << to_string(mode) << ": " << r.detail;
      EXPECT_EQ(r.mode, mode);
      EXPECT_FALSE(r.error);
    }
  }
}

/// Every seeded mis-programming must be caught by all three engines, and
/// the symbolic engine must hand back a concrete counterexample minterm
/// that genuinely witnesses the disagreement (checked against the raw
/// personality.evaluate and the tabulated truth table — the replay
/// oracle's own primitives).
TEST(PlaCheck, TamperedPersonalityCaughtByAllModesWithCounterexample) {
  const rtl::Design d = rtl::parse(kCounter);
  const synth::TabulatedFsm fsm = synth::tabulate(d);
  const logic::PlaTerms good = programmed_personality(fsm);
  ASSERT_FALSE(good.terms.empty());

  std::vector<logic::PlaTerms> tampered;
  {
    // Flipped polarity: one crosspoint of the first term mis-programmed
    // (or an unconstrained column pinned).
    logic::PlaTerms bad = good;
    logic::Cube& c = bad.terms[0];
    if (c.mask != 0) c.value ^= c.mask & (~c.mask + 1u);
    else c = {1u, 1u};
    tampered.push_back(std::move(bad));
  }
  {
    // Dropped term: disconnect one product term from the first output
    // column that uses more than one (minimized covers are irredundant,
    // so the column's function must change).
    logic::PlaTerms bad = good;
    for (auto& sel : bad.output_terms) {
      if (sel.size() > 1) {
        sel.pop_back();
        break;
      }
    }
    tampered.push_back(std::move(bad));
  }

  for (std::size_t i = 0; i < tampered.size(); ++i) {
    const logic::PlaTerms& bad = tampered[i];
    const PlaCheckReport sym = check_pla(d, fsm, bad, 64, 4);
    EXPECT_FALSE(sym.ok) << "perturbation " << i;
    ASSERT_TRUE(sym.has_counterexample) << "perturbation " << i;
    // Re-judge the counterexample with the oracle's own primitives.
    const auto kit = std::find(fsm.output_names.begin(),
                               fsm.output_names.end(), sym.mismatch_signal);
    ASSERT_NE(kit, fsm.output_names.end()) << sym.detail;
    const int k = static_cast<int>(kit - fsm.output_names.begin());
    const bool pla_out = !bad.evaluate(k, sym.counterexample);
    const logic::Tri want =
        fsm.function.outputs[static_cast<std::size_t>(k)].get(
            sym.counterexample);
    ASSERT_NE(want, logic::Tri::DontCare) << sym.detail;
    EXPECT_NE(pla_out, want == logic::Tri::One)
        << "perturbation " << i << ": counterexample is not a witness: "
        << sym.detail;
    // The sampling engines agree the personality is bad.
    for (const PlaCheckMode mode :
         {PlaCheckMode::Compiled, PlaCheckMode::Replay}) {
      const PlaCheckReport r = check_pla(d, fsm, bad, 64, 4, 1, {}, mode);
      EXPECT_FALSE(r.ok) << "perturbation " << i << " escaped "
                         << to_string(mode);
      EXPECT_FALSE(r.error) << r.detail;
    }
  }
}

TEST(PlaCheck, OverWideFsmRejectedStructurally) {
  // 40 input bits + 0 state bits cannot pack into a 32-bit minterm; every
  // mode must reject with a structured diag instead of silently wrapping.
  const rtl::Design d = rtl::parse(R"(
    processor wide (input a<20>; input b<20>; output y;) { y = a[0]; })");
  synth::TabulatedFsm fsm;
  fsm.state_bits = 0;
  fsm.function.num_inputs = 1;
  fsm.function.outputs.emplace_back(1);
  fsm.input_names = {"a[0]"};
  fsm.output_names = {"y"};
  logic::PlaTerms p;
  p.num_inputs = 1;
  p.output_terms = {{}};
  for (const PlaCheckMode mode : {PlaCheckMode::Symbolic,
                                  PlaCheckMode::Compiled,
                                  PlaCheckMode::Replay}) {
    const PlaCheckReport r = check_pla(d, fsm, p, 16, 1, 1, {}, mode);
    EXPECT_FALSE(r.ok) << to_string(mode);
    EXPECT_FALSE(r.error) << to_string(mode) << ": " << r.detail;
    EXPECT_NE(r.detail.find("32-bit cube packing"), std::string::npos)
        << to_string(mode) << ": " << r.detail;
  }
}

// ------------------------------------------------------------- crosscheck --

TEST(Crosscheck, CounterAcrossAllThreeModels) {
  const rtl::Design d = rtl::parse(kCounter);
  CrosscheckOptions opt;
  opt.cycles = 128;
  opt.lanes = 8;
  opt.switch_cycles = 12;
  const CrosscheckReport r = crosscheck(d, opt);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_EQ(r.switch_cycles, 12);
  EXPECT_GT(r.transistors, 0u);
}

TEST(Crosscheck, TrafficLightAcrossAllThreeModels) {
  const rtl::Design d = rtl::parse(kTraffic);
  CrosscheckOptions opt;
  opt.cycles = 128;
  opt.lanes = 8;
  opt.switch_cycles = 8;
  const CrosscheckReport r = crosscheck(d, opt);
  EXPECT_TRUE(r.ok) << r.detail;
}

// ----------------------------------------------------------------- PDP-8 --

const char* kPdp8 = silc_fixtures::kPdp8Source;

std::uint32_t ins(int op, int ind, int page, int off) {
  return static_cast<std::uint32_t>((op << 9) | (ind << 8) | (page << 7) | off);
}

TEST(Pdp8, CompiledSimRunsTheExampleProgramCycleIdentically) {
  const rtl::Design d = rtl::parse(kPdp8);
  CompiledSim cs(d);
  rtl::BehavioralSim bs(d);
  cs.reset();
  cs.poke("run", 1);
  bs.set("run", 1);

  std::vector<std::uint32_t> mem(4096, 0), bmem;
  mem[0] = ins(1, 0, 0, 020);  // TAD 20
  mem[1] = ins(1, 0, 0, 021);  // TAD 21
  mem[2] = ins(1, 1, 0, 024);  // TAD I 24
  mem[3] = ins(3, 0, 0, 023);  // DCA 23
  mem[4] = ins(1, 0, 0, 023);  // TAD 23
  mem[5] = ins(7, 0, 0, 1);    // OPR: IAC
  mem[6] = 07402;              // HLT
  mem[020] = 5;
  mem[021] = 7;
  mem[022] = 9;
  mem[024] = 022;
  bmem = mem;

  int cycles = 0;
  while (cs.peek("halted") == 0 && cycles < 200) {
    // Both worlds run their own memory image off their own bus.
    cs.poke("mem_rdata", mem[cs.peek("mem_addr") & 0xFFF]);
    bs.set("mem_rdata", bmem[bs.get("mem_addr") & 0xFFF]);
    ASSERT_EQ(cs.peek("mem_we"), bs.get("mem_we")) << "cycle " << cycles;
    ASSERT_EQ(cs.peek("mem_addr"), bs.get("mem_addr")) << "cycle " << cycles;
    if (cs.peek("mem_we") != 0) {
      mem[cs.peek("mem_addr") & 0xFFF] =
          static_cast<std::uint32_t>(cs.peek("mem_wdata"));
      bmem[bs.get("mem_addr") & 0xFFF] =
          static_cast<std::uint32_t>(bs.get("mem_wdata"));
    }
    cs.step();
    bs.tick();
    ASSERT_EQ(cs.peek("acc"), bs.get("acc")) << "cycle " << cycles;
    ASSERT_EQ(cs.peek("halted"), bs.get("halted")) << "cycle " << cycles;
    ++cycles;
  }
  EXPECT_EQ(cs.peek("acc"), 22u);
  EXPECT_EQ(mem[023], 21u);
  EXPECT_LT(cycles, 200);
}

TEST(Pdp8, CrosscheckRandomStimulus) {
  const rtl::Design d = rtl::parse(kPdp8);
  CrosscheckOptions opt;
  opt.cycles = 48;
  opt.lanes = 4;
  opt.switch_cycles = 2;  // the relaxation model is slow; 2 cycles suffice
  const CrosscheckReport r = crosscheck(d, opt);
  EXPECT_TRUE(r.ok) << r.detail;
  EXPECT_GT(r.transistors, 1000u);
}

}  // namespace
}  // namespace silc::sim
