// Floorplanner tests: legality (no overlaps, blocks inside the die) and
// packing quality across random block sets.
#include <gtest/gtest.h>

#include <random>

#include "place/place.hpp"

namespace silc::place {
namespace {

void expect_legal(const std::vector<Block>& blocks, const FloorplanResult& fp,
                  Coord spacing) {
  ASSERT_EQ(fp.placements.size(), blocks.size());
  std::vector<geom::Rect> rects;
  for (const Placement& p : fp.placements) {
    const Block& b = blocks[static_cast<std::size_t>(p.block)];
    const Coord w = p.rotated ? b.height : b.width;
    const Coord h = p.rotated ? b.width : b.height;
    const geom::Rect r{p.at.x, p.at.y, p.at.x + w, p.at.y + h};
    EXPECT_GE(r.x0, 0);
    EXPECT_GE(r.y0, 0);
    EXPECT_LE(r.x1, fp.width);
    EXPECT_LE(r.y1, fp.height);
    for (const geom::Rect& o : rects) {
      EXPECT_FALSE(r.overlaps(o)) << "blocks overlap";
      // Spacing margin between distinct blocks.
      const Coord gx = std::max(r.x0, o.x0) - std::min(r.x1, o.x1);
      const Coord gy = std::max(r.y0, o.y0) - std::min(r.y1, o.y1);
      EXPECT_TRUE(gx >= spacing || gy >= spacing) << "blocks too close";
    }
    rects.push_back(r);
  }
}

TEST(Floorplan, SingleBlock) {
  const std::vector<Block> blocks = {{"a", 100, 50, true}};
  const FloorplanResult fp = floorplan(blocks, {.spacing = 10});
  expect_legal(blocks, fp, 10);  // may be rotated; legality is what matters
  EXPECT_GE(fp.area(), 100 * 50);
}

TEST(Floorplan, TwoBlocksPackTightly) {
  const std::vector<Block> blocks = {{"a", 100, 100, true}, {"b", 100, 100, true}};
  const FloorplanResult fp = floorplan(blocks, {.spacing = 0});
  expect_legal(blocks, fp, 0);
  EXPECT_EQ(fp.area(), 200 * 100);  // perfect 2x1 packing
}

TEST(Floorplan, RotationHelps) {
  // Two 100x20 strips: best packing stacks them (100x40); without rotation
  // of a 20x100 one, side-by-side would waste area.
  const std::vector<Block> blocks = {{"a", 100, 20, true}, {"b", 20, 100, true}};
  const FloorplanResult fp = floorplan(blocks, {.spacing = 0});
  expect_legal(blocks, fp, 0);
  EXPECT_LE(fp.area(), 100 * 40);
}

TEST(Floorplan, RespectsNonRotatable) {
  const std::vector<Block> blocks = {{"a", 300, 20, false}, {"b", 300, 20, false}};
  const FloorplanResult fp = floorplan(blocks, {.spacing = 0});
  expect_legal(blocks, fp, 0);
  for (const Placement& p : fp.placements) EXPECT_FALSE(p.rotated);
}

TEST(Floorplan, EmptyThrows) {
  EXPECT_THROW(floorplan({}), std::invalid_argument);
}

class FloorplanRandom : public ::testing::TestWithParam<int> {};

TEST_P(FloorplanRandom, LegalAndReasonablyPacked) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> dim(20, 300);
  std::uniform_int_distribution<int> count(2, 14);
  const int n = count(rng);
  std::vector<Block> blocks;
  for (int i = 0; i < n; ++i) {
    blocks.push_back({"b" + std::to_string(i), dim(rng), dim(rng), true});
  }
  const FloorplanResult fp = floorplan(blocks, {.spacing = 8});
  expect_legal(blocks, fp, 8);
  EXPECT_GT(fp.utilization, 0.35) << "poor packing for n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloorplanRandom, ::testing::Range(0, 10));

}  // namespace
}  // namespace silc::place
