// Logic minimization tests: prime implicants, QM covering, heuristic
// expansion — correctness is checked by equivalence against the original
// function (property-style across random functions).
#include <gtest/gtest.h>

#include <random>

#include "logic/equiv.hpp"
#include "logic/logic.hpp"

namespace silc::logic {
namespace {

TEST(Cube, CoverContain) {
  const Cube c{0b011, 0b001};  // x0=1, x1=0, x2=-
  EXPECT_TRUE(c.covers(0b001));
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b011));
  EXPECT_FALSE(c.covers(0b000));
  EXPECT_EQ(c.literal_count(), 2);
  EXPECT_EQ(c.to_string(3), "10-");
  const Cube wider{0b001, 0b001};  // x0=1
  EXPECT_TRUE(wider.contains(c));
  EXPECT_FALSE(c.contains(wider));
  EXPECT_TRUE(c.contains(c));
}

TEST(TruthTable, Basics) {
  TruthTable t = TruthTable::from_function(3, [](std::uint32_t r) {
    return __builtin_popcount(r) >= 2;  // majority
  });
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.on_count(), 4u);
  EXPECT_EQ(t.get(0b011), Tri::One);
  EXPECT_EQ(t.get(0b001), Tri::Zero);
  EXPECT_THROW(TruthTable(21), std::invalid_argument);
  EXPECT_THROW(TruthTable(-1), std::invalid_argument);
}

TEST(Minimize, MajorityIsThreeTerms) {
  // maj(a,b,c) = ab + ac + bc: classic minimal cover.
  const TruthTable t = TruthTable::from_function(
      3, [](std::uint32_t r) { return __builtin_popcount(r) >= 2; });
  const std::vector<Cube> cover = minimize_qm(t);
  EXPECT_EQ(cover.size(), 3u);
  EXPECT_TRUE(t.implemented_by(cover));
  for (const Cube& c : cover) EXPECT_EQ(c.literal_count(), 2);
}

TEST(Minimize, XorNeedsAllMinterms) {
  const TruthTable t = TruthTable::from_function(
      4, [](std::uint32_t r) { return (__builtin_popcount(r) & 1) != 0; });
  const std::vector<Cube> cover = minimize_qm(t);
  EXPECT_EQ(cover.size(), 8u);  // parity has no mergeable minterms
  EXPECT_TRUE(t.implemented_by(cover));
}

TEST(Minimize, ConstantFunctions) {
  const TruthTable ones =
      TruthTable::from_function(4, [](std::uint32_t) { return true; });
  const std::vector<Cube> cover = minimize_qm(ones);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0u);  // tautology cube
  const TruthTable zeros =
      TruthTable::from_function(4, [](std::uint32_t) { return false; });
  EXPECT_TRUE(minimize_qm(zeros).empty());
  EXPECT_TRUE(minimize_heuristic(zeros).empty());
}

TEST(Minimize, DontCaresAreExploited) {
  // f = 1 on {1}, don't-care on {3,5,7}: a single cube x0 suffices.
  TruthTable t(3);
  t.set(1, Tri::One);
  t.set(3, Tri::DontCare);
  t.set(5, Tri::DontCare);
  t.set(7, Tri::DontCare);
  const std::vector<Cube> cover = minimize_qm(t);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 1u);
  EXPECT_EQ(cover[0].value, 1u);
  EXPECT_TRUE(t.implemented_by(cover));
}

TEST(PrimeImplicants, SevenSegmentStyleFunction) {
  // The classic QM textbook example: f = sum(4,8,10,11,12,15), dc(9,14).
  TruthTable t(4);
  for (const std::uint32_t m : {4u, 8u, 10u, 11u, 12u, 15u}) t.set(m, Tri::One);
  for (const std::uint32_t m : {9u, 14u}) t.set(m, Tri::DontCare);
  const std::vector<Cube> cover = minimize_qm(t);
  EXPECT_TRUE(t.implemented_by(cover));
  // Known minimum: 3 terms (x1x2'x3' + x0x2' + x0x2... in some polarity).
  EXPECT_LE(cover.size(), 3u);
}

class RandomFunctionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFunctionTest, QmAndHeuristicBothImplementTheFunction) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> nbits(1, 6);
  std::uniform_int_distribution<int> tri(0, 9);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = nbits(rng);
    TruthTable t(n);
    for (std::uint32_t r = 0; r < t.size(); ++r) {
      const int x = tri(rng);
      t.set(r, x < 4 ? Tri::Zero : (x < 8 ? Tri::One : Tri::DontCare));
    }
    const std::vector<Cube> qm = minimize_qm(t);
    const std::vector<Cube> heur = minimize_heuristic(t);
    EXPECT_TRUE(t.implemented_by(qm)) << "qm n=" << n;
    EXPECT_TRUE(t.implemented_by(heur)) << "heur n=" << n;
    // QM-with-B&B never loses to the heuristic by more than rounding.
    EXPECT_LE(qm.size(), heur.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFunctionTest, ::testing::Range(0, 10));

TEST(Minimize, WideFunctionViaHeuristic) {
  // 12 inputs: a sparse function the heuristic should compress well.
  const TruthTable t = TruthTable::from_function(12, [](std::uint32_t r) {
    return (r & 0xF0F) == 0xF0F || (r & 0x0F0) == 0;
  });
  const std::vector<Cube> cover = minimize_heuristic(t);
  EXPECT_TRUE(t.implemented_by(cover));
  EXPECT_LE(cover.size(), 4u);  // two product terms + expansion slack
}

TEST(MultiOutput, SharedTerms) {
  // f0 = a&b, f1 = a&b | c : the a&b term must be shared.
  MultiFunction f;
  f.num_inputs = 3;
  f.outputs.push_back(TruthTable::from_function(
      3, [](std::uint32_t r) { return (r & 3) == 3; }));
  f.outputs.push_back(TruthTable::from_function(
      3, [](std::uint32_t r) { return (r & 3) == 3 || (r & 4) != 0; }));
  const PlaTerms terms = minimize_multi(f);
  EXPECT_EQ(terms.terms.size(), 2u);  // {ab, c}
  EXPECT_EQ(terms.output_terms[0].size(), 1u);
  EXPECT_EQ(terms.output_terms[1].size(), 2u);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(terms.evaluate(0, r), (r & 3) == 3);
    EXPECT_EQ(terms.evaluate(1, r), (r & 3) == 3 || (r & 4) != 0);
  }
}

TEST(MultiOutput, HeuristicPath) {
  MultiFunction f;
  f.num_inputs = 11;
  f.outputs.push_back(TruthTable::from_function(
      11, [](std::uint32_t r) { return (r & 0x41) == 0x41; }));
  const PlaTerms terms = minimize_multi(f, true);
  ASSERT_EQ(terms.output_terms.size(), 1u);
  for (std::uint32_t r = 0; r < (1u << 11); ++r) {
    EXPECT_EQ(terms.evaluate(0, r), (r & 0x41) == 0x41);
  }
}

// ------------------------------------------------- symbolic equivalence --

bool cover_evaluates(const std::vector<Cube>& cover, std::uint32_t m) {
  for (const Cube& c : cover) {
    if (c.covers(m)) return true;
  }
  return false;
}

TEST(Equiv, TautologyBasics) {
  std::uint32_t cex = 0;
  // x0 + x0' is a tautology over any width.
  const std::vector<Cube> split = {{1u, 1u}, {1u, 0u}};
  EXPECT_TRUE(is_tautology(3, split));
  // A single bound cube is not.
  EXPECT_FALSE(is_tautology(3, {{1u, 1u}}, &cex));
  EXPECT_EQ(cex & 1u, 0u);  // the witness has x0 = 0
  // The empty cover covers nothing.
  EXPECT_FALSE(is_tautology(2, {}, &cex));
  // The universal cube covers everything.
  EXPECT_TRUE(is_tautology(2, {{0u, 0u}}));
}

TEST(Equiv, CubeContainment) {
  // x0x1 is inside x0; x0 is not inside x0x1, and the witness minterm
  // must lie in the big cube but escape the small one.
  std::uint32_t cex = 0;
  const Cube big{1u, 1u};    // x0
  const Cube small{3u, 3u};  // x0 x1
  EXPECT_TRUE(cube_covered(4, small, {big}));
  EXPECT_FALSE(cube_covered(4, big, {small}, &cex));
  EXPECT_TRUE(big.covers(cex));
  EXPECT_FALSE(small.covers(cex));
}

TEST(Equiv, ExactCoverPartitionsEveryTriSet) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> tri(0, 9);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 1 + trial % 6;
    TruthTable t(n);
    for (std::uint32_t r = 0; r < t.size(); ++r) {
      const int x = tri(rng);
      t.set(r, x < 4 ? Tri::Zero : (x < 8 ? Tri::One : Tri::DontCare));
    }
    for (const Tri which : {Tri::Zero, Tri::One, Tri::DontCare}) {
      const std::vector<Cube> cover = exact_cover(t, which);
      for (std::uint32_t r = 0; r < t.size(); ++r) {
        EXPECT_EQ(cover_evaluates(cover, r), t.get(r) == which)
            << "n=" << n << " row=" << r;
      }
    }
  }
}

/// Differential fuzz: the symbolic verdict must agree with the truth
/// table's exhaustive implemented_by on random covers over functions with
/// don't-cares — and every counterexample must be a genuine witness.
TEST(Equiv, FuzzAgreesWithImplementedBy) {
  std::mt19937 rng(2026);
  std::uniform_int_distribution<int> nbits(1, 7);
  std::uniform_int_distribution<int> tri(0, 9);
  std::uniform_int_distribution<int> ncubes(0, 6);
  int disagreements = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const int n = nbits(rng);
    const std::uint32_t space = (1u << n) - 1;
    TruthTable t(n);
    for (std::uint32_t r = 0; r < t.size(); ++r) {
      const int x = tri(rng);
      t.set(r, x < 4 ? Tri::Zero : (x < 8 ? Tri::One : Tri::DontCare));
    }
    std::vector<Cube> cover;
    // Half the trials check a cover that implements the function by
    // construction; half check arbitrary random covers.
    if (trial % 2 == 0) {
      cover = (trial % 4 == 0) ? minimize_qm(t) : minimize_heuristic(t);
    } else {
      const int k = ncubes(rng);
      for (int i = 0; i < k; ++i) {
        const std::uint32_t mask = rng() & space;
        cover.push_back({mask, rng() & mask});
      }
    }
    const EquivVerdict v = check_cover_equiv(t, cover);
    ASSERT_EQ(v.equal, t.implemented_by(cover))
        << "n=" << n << " trial=" << trial;
    if (!v.equal) {
      ++disagreements;
      EXPECT_LE(v.counterexample, space);
      EXPECT_NE(t.get(v.counterexample), Tri::DontCare);
      EXPECT_EQ(t.get(v.counterexample) == Tri::One, v.expected);
      EXPECT_EQ(cover_evaluates(cover, v.counterexample), v.got);
      EXPECT_NE(v.expected, v.got)
          << "counterexample does not witness a disagreement";
    }
  }
  // The random half must actually exercise the failure path.
  EXPECT_GT(disagreements, 50);
}

/// NOR-plane handling end to end: program the *complement* cover (what a
/// NOR-NOR PLA stores), then prove it against the complemented function —
/// and catch a perturbed plane with a witness, the way check_pla does.
TEST(Equiv, ComplementCoverRoundTripsThroughNorSemantics) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> tri(0, 9);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + trial % 5;
    TruthTable t(n);
    for (std::uint32_t r = 0; r < t.size(); ++r) {
      const int x = tri(rng);
      t.set(r, x < 4 ? Tri::Zero : (x < 8 ? Tri::One : Tri::DontCare));
    }
    const TruthTable comp = TruthTable::from_tri_function(
        n, [&t](std::uint32_t r) {
          const Tri v = t.get(r);
          if (v == Tri::One) return Tri::Zero;
          if (v == Tri::Zero) return Tri::One;
          return Tri::DontCare;
        });
    const std::vector<Cube> plane = minimize_qm(comp);
    EXPECT_TRUE(check_cover_equiv(comp, plane).equal);
    // NOR of the plane reproduces the function on every care row.
    for (std::uint32_t r = 0; r < t.size(); ++r) {
      if (t.get(r) == Tri::DontCare) continue;
      EXPECT_EQ(!cover_evaluates(plane, r), t.get(r) == Tri::One);
    }
    // Perturb one literal of a non-trivial plane: the prover must notice
    // unless the flip lands entirely inside don't-care space.
    if (plane.empty() || plane[0].mask == 0) continue;
    std::vector<Cube> bad = plane;
    bad[0].value ^= bad[0].mask & (~bad[0].mask + 1u);
    const EquivVerdict v = check_cover_equiv(comp, bad);
    if (!v.equal) {
      EXPECT_NE(comp.get(v.counterexample), Tri::DontCare);
      EXPECT_EQ(cover_evaluates(bad, v.counterexample), v.got);
      EXPECT_NE(v.expected, v.got);
    } else {
      EXPECT_TRUE(comp.implemented_by(bad));  // flip hid in the dc-set
    }
  }
}

}  // namespace
}  // namespace silc::logic
