// RTL language tests: parsing, elaboration semantics (if/case flattening,
// width rules), and the behavioral simulator.
#include <gtest/gtest.h>

#include "rtl/rtl.hpp"

namespace silc::rtl {
namespace {

TEST(RtlParse, CounterElaborates) {
  const Design d = parse(R"(
    processor counter (input reset; output value<4>;) {
      reg count<4>;
      value = count;
      always { if (reset) count := 0; else count := count + 1; }
    })");
  EXPECT_EQ(d.name, "counter");
  EXPECT_EQ(d.state_bits(), 4u);
  EXPECT_EQ(d.input_bits(), 1u);
  EXPECT_EQ(d.output_bits(), 4u);
  ASSERT_TRUE(d.next.count("count"));
  ASSERT_TRUE(d.comb.count("value"));
}

TEST(RtlParse, Errors) {
  const auto bad = [](const std::string& src) {
    EXPECT_THROW(parse(src), ParseError) << src;
  };
  bad("");
  bad("processor x (input a; input a;) {}");            // duplicate
  bad("processor x (input a<40>;) {}");                 // width too big
  bad("processor x (input a;) { b = a; }");             // undeclared
  bad("processor x (input a; output y;) { y = a; y = a; }");  // double assign
  bad("processor x (input a; output y;) { always { y := a; } y = a; }");  // := wire
  bad("processor x (input a; output y;) { reg r; y = a; always { a := 1; } }");
  bad("processor x (input a; output y;) { y = a[3]; }");  // out of range
  bad("processor x (input a; output y;) {}");             // y unassigned
  bad("processor x (input a; output y;) { y = a +; }");   // syntax
}

TEST(RtlParse, EmptyProcessorIsLegal) {
  const Design d = parse("processor x () { }");
  EXPECT_EQ(d.signals.size(), 0u);
}

TEST(RtlSim, CounterCounts) {
  const Design d = parse(R"(
    processor counter (input reset; output value<4>;) {
      reg count<4>;
      value = count;
      always { if (reset) count := 0; else count := count + 1; }
    })");
  BehavioralSim sim(d);
  sim.set("reset", 0);
  for (int i = 1; i <= 20; ++i) {
    sim.tick();
    EXPECT_EQ(sim.get("value"), static_cast<std::uint64_t>(i % 16));
  }
  sim.set("reset", 1);
  sim.tick();
  EXPECT_EQ(sim.get("value"), 0u);
}

TEST(RtlSim, OperatorSemantics) {
  const Design d = parse(R"(
    processor ops (input a<8>; input b<8>;
                   output sum<8>; output diff<8>; output lt; output eq;
                   output sh<8>; output bits<8>; output inv<8>; output mx<8>;) {
      sum = a + b;
      diff = a - b;
      lt = a < b;
      eq = a == b;
      sh = (a << 2) | (b >> 3);
      bits = {a[3:0], b[7:4]};
      inv = ~a ^ b;
      mx = a[0] ? a : b;
    })");
  BehavioralSim sim(d);
  const auto check = [&sim](std::uint64_t a, std::uint64_t b) {
    sim.set("a", a);
    sim.set("b", b);
    EXPECT_EQ(sim.get("sum"), (a + b) & 0xFF);
    EXPECT_EQ(sim.get("diff"), (a - b) & 0xFF);
    EXPECT_EQ(sim.get("lt"), a < b ? 1u : 0u);
    EXPECT_EQ(sim.get("eq"), a == b ? 1u : 0u);
    EXPECT_EQ(sim.get("sh"), ((a << 2) | (b >> 3)) & 0xFF);
    EXPECT_EQ(sim.get("bits"), (((a & 0xF) << 4) | (b >> 4)) & 0xFF);
    EXPECT_EQ(sim.get("inv"), (~a ^ b) & 0xFF);
    EXPECT_EQ(sim.get("mx"), (a & 1) != 0 ? a : b);
  };
  check(0, 0);
  check(5, 9);
  check(255, 1);
  check(128, 128);
  check(0x55, 0xAA);
}

TEST(RtlSim, CaseStatement) {
  const Design d = parse(R"(
    processor fsm (input go; output st<2>;) {
      reg state<2>;
      st = state;
      always {
        case (state) {
          0: if (go) state := 1;
          1: state := 2;
          2: state := 3;
          default: state := 0;
        }
      }
    })");
  BehavioralSim sim(d);
  sim.set("go", 0);
  sim.tick();
  EXPECT_EQ(sim.get("st"), 0u);  // waits for go
  sim.set("go", 1);
  sim.tick();
  EXPECT_EQ(sim.get("st"), 1u);
  sim.tick();
  EXPECT_EQ(sim.get("st"), 2u);
  sim.tick();
  EXPECT_EQ(sim.get("st"), 3u);
  sim.tick();
  EXPECT_EQ(sim.get("st"), 0u);  // default arm
}

TEST(RtlSim, LaterAssignmentWins) {
  const Design d = parse(R"(
    processor p (input a; output y<2>;) {
      reg r<2>;
      y = r;
      always {
        r := 1;
        if (a) r := 2;
      }
    })");
  BehavioralSim sim(d);
  sim.set("a", 0);
  sim.tick();
  EXPECT_EQ(sim.get("y"), 1u);
  sim.set("a", 1);
  sim.tick();
  EXPECT_EQ(sim.get("y"), 2u);
}

TEST(RtlSim, UnassignedPathHolds) {
  const Design d = parse(R"(
    processor p (input load; input v<4>; output y<4>;) {
      reg r<4>;
      y = r;
      always { if (load) r := v; }
    })");
  BehavioralSim sim(d);
  sim.set("load", 1);
  sim.set("v", 9);
  sim.tick();
  EXPECT_EQ(sim.get("y"), 9u);
  sim.set("load", 0);
  sim.set("v", 3);
  sim.tick();
  sim.tick();
  EXPECT_EQ(sim.get("y"), 9u);  // held
}

TEST(RtlSim, WiresChainAndCyclesDetected) {
  const Design d = parse(R"(
    processor p (input a<4>; output y<4>;) {
      wire b<4>; wire c<4>;
      b = a + 1;
      c = b + 1;
      y = c + 1;
    })");
  BehavioralSim sim(d);
  sim.set("a", 5);
  EXPECT_EQ(sim.get("y"), 8u);

  const Design cyc = parse(R"(
    processor p (input a<4>; output y<4>;) {
      wire b<4>; wire c<4>;
      b = c + 1;
      c = b + 1;
      y = c;
    })");
  BehavioralSim sim2(cyc);
  EXPECT_THROW(sim2.get("y"), std::runtime_error);
}

TEST(RtlSim, PokeAndNextOf) {
  const Design d = parse(R"(
    processor p (input x; output y<3>;) {
      reg r<3>;
      y = r;
      always { r := r + x; }
    })");
  BehavioralSim sim(d);
  sim.poke("r", 6);
  sim.set("x", 1);
  EXPECT_EQ(sim.next_of("r"), 7u);
  EXPECT_EQ(sim.get("y"), 6u);  // next_of does not commit
  sim.tick();
  EXPECT_EQ(sim.get("y"), 7u);
}

TEST(RtlSim, NumericLiterals) {
  const Design d = parse(R"(
    processor p (output a<8>; output b<8>; output c<8>;) {
      a = 0x2a; b = 0b101; c = 42;
    })");
  BehavioralSim sim(d);
  EXPECT_EQ(sim.get("a"), 42u);
  EXPECT_EQ(sim.get("b"), 5u);
  EXPECT_EQ(sim.get("c"), 42u);
}

}  // namespace
}  // namespace silc::rtl
