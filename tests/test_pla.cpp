// PLA generator tests: for a range of programmed functions the artwork must
// be design-rule clean, extract to the expected device population, and —
// the silicon-compilation acid test — switch-level simulate to exactly the
// programmed truth table on every input combination.
#include <gtest/gtest.h>

#include <functional>

#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "logic/logic.hpp"
#include "pla/pla.hpp"
#include "swsim/swsim.hpp"

namespace silc {
namespace {

using logic::MultiFunction;
using logic::TruthTable;

MultiFunction make_function(
    int n, const std::vector<std::function<bool(std::uint32_t)>>& fns) {
  MultiFunction f;
  f.num_inputs = n;
  for (const auto& fn : fns) f.outputs.push_back(TruthTable::from_function(n, fn));
  return f;
}

// Full verification loop: generate -> DRC -> extract -> simulate all rows.
void verify_pla(const MultiFunction& f, const std::string& name) {
  layout::Library lib;
  const pla::PlaResult result = pla::generate(lib, f, {.name = name});
  ASSERT_NE(result.cell, nullptr);

  const drc::Result d = drc::check(*result.cell);
  EXPECT_TRUE(d.ok()) << name << ": " << d.summary();

  const extract::Netlist nl = extract::extract(*result.cell);
  for (const auto& w : nl.warnings) ADD_FAILURE() << name << ": " << w;

  // Devices: one enhancement per crosspoint + per driver, one depletion
  // pullup per row + per driver.
  const std::size_t rows = result.personality.terms.size() + f.outputs.size();
  const std::size_t drivers = static_cast<std::size_t>(f.num_inputs);
  EXPECT_EQ(nl.enhancement_count(), result.stats.crosspoints + drivers);
  EXPECT_EQ(nl.depletion_count(), rows + drivers);

  swsim::Simulator sim(nl);
  for (std::uint32_t row = 0; row < (1u << f.num_inputs); ++row) {
    for (int i = 0; i < f.num_inputs; ++i) {
      sim.set("in" + std::to_string(i), ((row >> i) & 1u) != 0);
    }
    ASSERT_TRUE(sim.settle()) << name << " row " << row;
    for (std::size_t k = 0; k < f.outputs.size(); ++k) {
      const logic::Tri want = f.outputs[k].get(row);
      if (want == logic::Tri::DontCare) continue;
      EXPECT_EQ(sim.get("out" + std::to_string(k)),
                swsim::from_bool(want == logic::Tri::One))
          << name << " out" << k << " row " << row;
    }
  }
}

TEST(Pla, Inverter1x1) {
  verify_pla(make_function(1, {[](std::uint32_t r) { return r == 0; }}),
             "pla_not");
}

TEST(Pla, Identity1x1) {
  verify_pla(make_function(1, {[](std::uint32_t r) { return r == 1; }}),
             "pla_id");
}

TEST(Pla, AndOrNand) {
  verify_pla(make_function(
                 2, {[](std::uint32_t r) { return r == 3; },
                     [](std::uint32_t r) { return r != 0; },
                     [](std::uint32_t r) { return r != 3; }}),
             "pla_basic");
}

TEST(Pla, Xor2) {
  verify_pla(make_function(
                 2, {[](std::uint32_t r) { return r == 1 || r == 2; }}),
             "pla_xor");
}

TEST(Pla, Majority3) {
  verify_pla(make_function(3, {[](std::uint32_t r) {
               return __builtin_popcount(r) >= 2;
             }}),
             "pla_maj");
}

TEST(Pla, FullAdder) {
  verify_pla(make_function(
                 3, {[](std::uint32_t r) { return (__builtin_popcount(r) & 1) != 0; },
                     [](std::uint32_t r) { return __builtin_popcount(r) >= 2; }}),
             "pla_fa");
}

TEST(Pla, Decoder2to4) {
  std::vector<std::function<bool(std::uint32_t)>> outs;
  for (std::uint32_t k = 0; k < 4; ++k) {
    outs.push_back([k](std::uint32_t r) { return r == k; });
  }
  verify_pla(make_function(2, outs), "pla_dec24");
}

TEST(Pla, ConstantOutputs) {
  verify_pla(make_function(2, {[](std::uint32_t) { return true; },
                               [](std::uint32_t r) { return r == 2; }}),
             "pla_const1");
}

TEST(Pla, FourInputMux) {
  // out = s1 ? (s0 ? d3 : d2) : (s0 ? d1 : d0); inputs d0..d3,s0,s1.
  verify_pla(make_function(6,
                           {[](std::uint32_t r) {
                             const std::uint32_t sel = (r >> 4) & 3u;
                             return ((r >> sel) & 1u) != 0;
                           }}),
             "pla_mux4");
}

TEST(Pla, StatsAndGeometryScale) {
  layout::Library lib;
  const MultiFunction small =
      make_function(2, {[](std::uint32_t r) { return r == 3; }});
  const MultiFunction big = make_function(4, {
      [](std::uint32_t r) { return __builtin_popcount(r) >= 3; },
      [](std::uint32_t r) { return (r & 1) != 0 && (r & 8) != 0; },
  });
  const pla::PlaResult a = pla::generate(lib, small, {.name = "small"});
  const pla::PlaResult b = pla::generate(lib, big, {.name = "big"});
  EXPECT_GT(b.stats.area(), a.stats.area());
  EXPECT_EQ(a.stats.num_inputs, 2);
  EXPECT_EQ(b.stats.num_inputs, 4);
  EXPECT_GT(b.stats.crosspoints, a.stats.crosspoints);
  EXPECT_EQ(b.stats.width, b.cell->bbox().width());
}

TEST(Pla, RejectsDegenerateRequests) {
  layout::Library lib;
  MultiFunction f;
  f.num_inputs = 0;
  EXPECT_THROW(pla::generate(lib, f, {}), std::invalid_argument);
  MultiFunction no_outputs;
  no_outputs.num_inputs = 2;
  EXPECT_THROW(pla::generate(lib, no_outputs, {}), std::invalid_argument);
}

TEST(Pla, ComplementHelper) {
  MultiFunction f = make_function(2, {[](std::uint32_t r) { return r == 1; }});
  f.outputs[0].set(2, logic::Tri::DontCare);
  const MultiFunction c = pla::complement(f);
  EXPECT_EQ(c.outputs[0].get(1), logic::Tri::Zero);
  EXPECT_EQ(c.outputs[0].get(0), logic::Tri::One);
  EXPECT_EQ(c.outputs[0].get(2), logic::Tri::DontCare);
}

}  // namespace
}  // namespace silc
