// CIF writer/parser tests: roundtrip fidelity, foreign-dialect parsing,
// polygon/wire conversion, and error reporting.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "cif/cif.hpp"
#include "geom/rectset.hpp"
#include "layout/layout.hpp"

namespace silc {
namespace {

using geom::Orient;
using geom::Point;
using geom::Rect;
using geom::RectSet;
using geom::Transform;
using layout::Cell;
using layout::Library;
using tech::Layer;

// Compare two cells' flattened geometry as *regions* per layer (the rect
// decomposition may differ; the covered area must not).
void expect_same_regions(const Cell& a, const Cell& b) {
  std::map<Layer, RectSet> ra, rb;
  for (const layout::Shape& s : layout::flatten(a)) ra[s.layer].add(s.rect);
  for (const layout::Shape& s : layout::flatten(b)) rb[s.layer].add(s.rect);
  for (int i = 0; i < tech::kNumLayers; ++i) {
    const Layer l = static_cast<Layer>(i);
    EXPECT_EQ(ra[l], rb[l]) << "layer " << tech::name(l);
  }
}

TEST(CifWriter, EmitsSymbolsChildrenFirst) {
  Library lib;
  Cell& leaf = lib.create("leaf");
  leaf.add_rect(Layer::Metal, {0, 0, 6, 6});
  Cell& top = lib.create("top");
  top.add_instance(leaf, {Orient::R0, {0, 0}});
  const std::string text = cif::write(top);
  EXPECT_LT(text.find("9 leaf;"), text.find("9 top;"));
  EXPECT_NE(text.find("DS 1 125 2;"), std::string::npos);
  EXPECT_NE(text.find("E\n"), std::string::npos);
}

TEST(CifRoundTrip, FlatCell) {
  Library lib;
  Cell& c = lib.create("flat");
  c.add_rect(Layer::Diff, {0, 0, 4, 12});
  c.add_rect(Layer::Poly, {-2, 4, 6, 8});
  c.add_rect(Layer::Metal, {0, 0, 6, 6});
  c.add_label("out", Layer::Metal, {3, 3});

  Library lib2;
  Cell& back = cif::parse(cif::write(c), lib2);
  expect_same_regions(c, back);
  ASSERT_EQ(back.labels().size(), 1u);
  EXPECT_EQ(back.labels()[0].text, "out");
  EXPECT_EQ(back.labels()[0].at, (Point{3, 3}));
  EXPECT_EQ(back.name(), "flat");
}

class CifOrientRoundTrip : public ::testing::TestWithParam<Orient> {};

TEST_P(CifOrientRoundTrip, InstanceTransformSurvives) {
  Library lib;
  Cell& leaf = lib.create("leaf");
  // Asymmetric so any orientation mistake changes the region.
  leaf.add_rect(Layer::Poly, {0, 0, 8, 2});
  leaf.add_rect(Layer::Poly, {0, 0, 2, 6});
  Cell& top = lib.create("top");
  top.add_instance(leaf, {GetParam(), {14, -6}});

  Library lib2;
  Cell& back = cif::parse(cif::write(top), lib2);
  expect_same_regions(top, back);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrients, CifOrientRoundTrip,
    ::testing::Values(Orient::R0, Orient::R90, Orient::R180, Orient::R270,
                      Orient::MX, Orient::MY, Orient::MXR90, Orient::MYR90),
    [](const auto& info) { return geom::to_string(info.param); });

TEST(CifRoundTrip, DeepHierarchyWithSharedCells) {
  Library lib;
  Cell& unit = lib.create("unit");
  unit.add_rect(Layer::Diff, {0, 0, 4, 4});
  Cell& row = lib.create("row");
  for (int i = 0; i < 4; ++i) {
    row.add_instance(unit, {Orient::R0, {i * 10, 0}});
  }
  Cell& grid = lib.create("grid");
  for (int j = 0; j < 3; ++j) {
    grid.add_instance(row, {j % 2 != 0 ? Orient::MX : Orient::R0, {0, j * 10}});
  }
  Library lib2;
  Cell& back = cif::parse(cif::write(grid), lib2);
  expect_same_regions(grid, back);
  // Hierarchy is preserved, not flattened: 3 symbols.
  EXPECT_EQ(lib2.size(), 3u);
}

TEST(CifRoundTrip, RandomizedCells) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> c(-30, 30), w(1, 10), li(0, 4);
  for (int trial = 0; trial < 20; ++trial) {
    Library lib;
    Cell& cell = lib.create("rand");
    for (int i = 0; i < 30; ++i) {
      const int x = c(rng), y = c(rng);
      cell.add_rect(static_cast<Layer>(li(rng)), {x, y, x + w(rng), y + w(rng)});
    }
    Library lib2;
    Cell& back = cif::parse(cif::write(cell), lib2);
    expect_same_regions(cell, back);
  }
}

TEST(CifParser, ForeignDialectBoxesAndWires) {
  // Centimicron-scaled file (DS scale 250/1 => 1 unit = 1 lambda = 2 of our
  // half-lambda units), with a wire and a rotated box.
  const std::string text =
      "( hand-written );\n"
      "DS 1 250 1;\n"
      "9 thing;\n"
      "L NM;\n"
      "B 4 2 2 1;\n"
      "B 2 4 10 2 0 1;\n"  // direction (0,1): quarter turn -> 4 wide, 2 tall
      "L NP;\n"
      "W 2 0 10 8 10 8 14;\n"
      "DF;\n"
      "C 1;\n"
      "E\n";
  Library lib;
  Cell& top = cif::parse(text, lib);
  EXPECT_EQ(top.name(), "thing");
  RectSet metal, poly;
  for (const layout::Shape& s : top.shapes()) {
    if (s.layer == Layer::Metal) metal.add(s.rect);
    if (s.layer == Layer::Poly) poly.add(s.rect);
  }
  RectSet expect_metal;
  expect_metal.add({0, 0, 8, 4});
  expect_metal.add({16, 2, 24, 6});  // 2x4 box, quarter-turned, center (10,2)
  EXPECT_EQ(metal, expect_metal);
  RectSet expect_poly;  // wire width 2 (=> half-width 1 lambda = 2 units)
  expect_poly.add({-2, 18, 18, 22});
  expect_poly.add({14, 18, 18, 30});
  EXPECT_EQ(poly, expect_poly);
}

TEST(CifParser, PolygonDecomposition) {
  // An L-shaped rectilinear polygon in lambda units.
  const std::string text =
      "DS 1 250 1;\nL ND;\n"
      "P 0 0 6 0 6 2 2 2 2 6 0 6;\n"
      "DF;\nC 1;\nE\n";
  Library lib;
  Cell& top = cif::parse(text, lib);
  RectSet got;
  for (const layout::Shape& s : top.shapes()) got.add(s.rect);
  RectSet want;
  want.add({0, 0, 12, 4});
  want.add({0, 4, 4, 12});
  EXPECT_EQ(got, want);
}

TEST(CifParser, CallBeforeDefinition) {
  const std::string text =
      "DS 2 125 2;\n9 outer;\nC 1 T 20 0;\nDF;\n"
      "DS 1 125 2;\n9 inner;\nL NM;\nB 12 12 6 6;\nDF;\n"
      "C 2;\nE\n";
  Library lib;
  Cell& top = cif::parse(text, lib);
  EXPECT_EQ(top.name(), "outer");
  ASSERT_EQ(top.instances().size(), 1u);
  EXPECT_EQ(top.instances()[0].cell->name(), "inner");
  EXPECT_EQ(top.instances()[0].transform.offset, (Point{10, 0}));
}

TEST(CifParser, TopLevelGeometryMakesImplicitTop) {
  // Unscaled top level: raw units are centimicrons (125 per half-lambda).
  const std::string text = "L NM; B 500 500 250 250; E\n";
  Library lib;
  Cell& top = cif::parse(text, lib);
  EXPECT_EQ(top.name(), "cif_top");
  ASSERT_EQ(top.shapes().size(), 1u);
  EXPECT_EQ(top.shapes()[0].rect, (Rect{0, 0, 4, 4}));
}

TEST(CifParser, Errors) {
  Library lib;
  const auto bad = [&lib](const std::string& text) {
    Library fresh;
    EXPECT_THROW(cif::parse(text, fresh), cif::CifError) << text;
  };
  bad("");                                     // missing E
  bad("L NM; B 4 4 2 2; E\n");                 // geometry before DS, off-grid
  bad("DS 1 125 2;\nDS 2 125 2;\nDF;\nE\n");   // nested DS
  bad("DF;\nE\n");                             // DF without DS
  bad("DS 1 125 2;\nL NM;\nB 4 4 1 1;\nDF;\nC 1;\nE\n");  // off-grid (125/2)
  bad("DS 1 125 2;\nL XX;\nDF;\nC 1;\nE\n");   // unknown layer
  bad("DS 1 125 2;\nL NM;\nR 4 0 0;\nDF;\nC 1;\nE\n");  // round flash
  bad("DS 1 125 2;\nC 7;\nDF;\nC 1;\nE\n");    // undefined symbol
  bad("DS 1 125 2;\nDF;\nC 1;\nQ;\nE\n");      // unknown command
  bad("DS 1 0 2;\nDF;\nE\n");                  // invalid scale
  bad("DS 1 125 2;\nL NP;\nP 0 0 4 4 0 8;\nDF;\nC 1;\nE\n");  // non-Manhattan
}

TEST(CifParser, OffGridCoordinateMessage) {
  Library lib;
  try {
    cif::parse("DS 1 1 1;\nL NM;\nB 4 4 2 2;\nDF;\nC 1;\nE\n", lib);
    FAIL() << "expected CifError";
  } catch (const cif::CifError& e) {
    EXPECT_NE(std::string(e.what()).find("off the half-lambda grid"),
              std::string::npos);
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(CifParser, UnknownUserExtensionIsSkipped) {
  const std::string text =
      "DS 1 125 2;\n9 x;\n91 arbitrary junk 1 2 3;\nL NM;\nB 12 12 6 6;\nDF;\nC 1;\nE\n";
  Library lib;
  Cell& top = cif::parse(text, lib);
  EXPECT_EQ(top.shapes().size(), 1u);
}

TEST(CifParser, CommentsAndCommasAreWhitespace) {
  const std::string text =
      "(header (nested) comment);DS 1 125 2;9 c;L NM;B 12,12,6,6;DF;C 1;E";
  Library lib;
  Cell& top = cif::parse(text, lib);
  ASSERT_EQ(top.shapes().size(), 1u);
  EXPECT_EQ(top.shapes()[0].rect, (Rect{0, 0, 6, 6}));
}

TEST(CifFile, WriteAndParseFile) {
  Library lib;
  Cell& c = lib.create("filecell");
  c.add_rect(Layer::Metal, {0, 0, 6, 6});
  const std::string path = ::testing::TempDir() + "/silc_test.cif";
  cif::write_file(path, c);
  Library lib2;
  Cell& back = cif::parse_file(path, lib2);
  expect_same_regions(c, back);
}

}  // namespace
}  // namespace silc
