// Whole-chip integration tests: assemble a complete FSM chip (PLA +
// two-phase registers + channel + pads), check it is DRC-clean, extract
// the transistors, and run it from the pads with phi1/phi2 clocks against
// the behavioral model. This is the paper's claim C1 end to end.
#include <gtest/gtest.h>

#include <random>

#include "assemble/assemble.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "route/route.hpp"
#include "swsim/swsim.hpp"

namespace silc {
namespace {

using swsim::Val;

// --------------------------------------------------------------- channel --

TEST(Channel, RoutesSimpleCrossing) {
  layout::Library lib;
  layout::Cell& c = lib.create("chan");
  route::ChannelSpec spec;
  spec.x0 = 0;
  spec.x1 = 200;
  spec.y0 = 0;
  // Net 0: bottom@16 -> top@116; net 1: bottom@136 -> top@36 (they cross).
  spec.pins = {{0, 16, false, tech::Layer::Poly},
               {0, 116, true, tech::Layer::Poly},
               {1, 136, false, tech::Layer::Poly},
               {1, 36, true, tech::Layer::Poly}};
  const route::ChannelResult r = route::route_channel(c, spec);
  EXPECT_EQ(r.tracks, 2);
  EXPECT_GT(r.height, 0);
  const drc::Result d = drc::check(c);
  EXPECT_TRUE(d.ok()) << d.summary();
  // Electrically: two separate nets, each spanning bottom to top.
  const extract::Netlist nl = extract::extract(c);
  EXPECT_EQ(nl.transistors.size(), 0u);
  EXPECT_EQ(nl.node_count(), 2u);
}

TEST(Channel, MetalPinsGetContacts) {
  layout::Library lib;
  layout::Cell& c = lib.create("chan_m");
  route::ChannelSpec spec;
  spec.x0 = 0;
  spec.x1 = 120;
  spec.y0 = 0;
  spec.pins = {{0, 16, false, tech::Layer::Metal},
               {0, 64, true, tech::Layer::Metal}};
  const route::ChannelResult r = route::route_channel(c, spec);
  EXPECT_EQ(r.tracks, 1);
  const drc::Result d = drc::check(c);
  EXPECT_TRUE(d.ok()) << d.summary();
  const extract::Netlist nl = extract::extract(c);
  EXPECT_EQ(nl.node_count(), 1u);  // one net through stubs+contacts+track
}

TEST(Channel, SharedTrackWhenIntervalsDisjoint) {
  layout::Library lib;
  layout::Cell& c = lib.create("chan_pack");
  route::ChannelSpec spec;
  spec.x0 = 0;
  spec.x1 = 400;
  spec.y0 = 0;
  spec.pins = {{0, 16, false, tech::Layer::Poly},
               {0, 48, true, tech::Layer::Poly},
               {1, 200, false, tech::Layer::Poly},
               {1, 260, true, tech::Layer::Poly}};
  EXPECT_EQ(route::route_channel(c, spec).tracks, 1);
}

TEST(Channel, RejectsBadPins) {
  layout::Library lib;
  layout::Cell& c = lib.create("chan_bad");
  route::ChannelSpec spec;
  spec.x0 = 0;
  spec.x1 = 100;
  spec.y0 = 0;
  spec.pins = {{0, 16, false, tech::Layer::Poly},
               {1, 24, false, tech::Layer::Poly}};  // 8 < leg pitch
  EXPECT_THROW(route::route_channel(c, spec), std::invalid_argument);
  spec.pins = {{0, 16, false, tech::Layer::Poly},
               {1, 16, true, tech::Layer::Poly}};  // same x, different nets
  EXPECT_THROW(route::route_channel(c, spec), std::invalid_argument);
  spec.pins = {{0, 96, false, tech::Layer::Poly}};  // outside span
  EXPECT_THROW(route::route_channel(c, spec), std::invalid_argument);
}

// ------------------------------------------------------------- FSM chips --

const char* kCounter = R"(
  processor counter (input reset; output value<2>;) {
    reg count<2>;
    value = count;
    always { if (reset) count := 0; else count := count + 1; }
  })";

struct ChipUnderTest {
  layout::Library lib;
  assemble::FsmChipResult chip;
  extract::Netlist netlist;
  rtl::Design design;

  explicit ChipUnderTest(const char* src, const std::string& name)
      : design(rtl::parse(src)) {
    const synth::TabulatedFsm fsm = synth::tabulate(design);
    chip = assemble::assemble_fsm_chip(lib, fsm, {.name = name});
    netlist = extract::extract(*chip.chip);
  }
};

TEST(FsmChip, CounterChipIsDrcClean) {
  ChipUnderTest t(kCounter, "counter_chip");
  const drc::Result d = drc::check(*t.chip.chip);
  EXPECT_TRUE(d.ok()) << d.summary();
  EXPECT_EQ(t.chip.stats.pads, 1 + 2 + 2 + 2);  // reset, value<2>, phis, rails
  EXPECT_GT(t.chip.stats.area(), 0);
}

TEST(FsmChip, CounterChipExtractsCleanly) {
  ChipUnderTest t(kCounter, "counter_chip2");
  for (const auto& w : t.netlist.warnings) ADD_FAILURE() << w;
  // Exactly one Vdd node and one GND node: power is fully connected.
  EXPECT_EQ(t.netlist.vdd_nodes.size(), 1u);
  EXPECT_EQ(t.netlist.gnd_nodes.size(), 1u);
  // Devices: PLA devices + 3 transistors per shift stage (2 bits x 2 stages).
  EXPECT_GT(t.netlist.transistors.size(),
            t.chip.stats.pla.crosspoints + 4u * 3u);
}

// Drive the chip from its pads with two-phase clocks, cross-checked against
// the behavioral simulator.
TEST(FsmChip, CounterChipRunsFromThePads) {
  ChipUnderTest t(kCounter, "counter_chip3");
  swsim::Simulator sw(t.netlist);
  rtl::BehavioralSim bsim(t.design);

  // Initialize: force the state nets low once (power-on reset), then
  // release them and run only through the pads.
  sw.set("phi1", false);
  sw.set("phi2", false);
  // The dynamic storage node of a stage is the inverter gate behind the
  // pass transistor; driving the slave gates high makes every state bit 0.
  for (int k = 0; k < 2; ++k) {
    const int store = t.netlist.find_node("s" + std::to_string(k) + ".inv.in");
    ASSERT_GE(store, 0);
    sw.set(store, Val::V1);
  }
  ASSERT_TRUE(sw.settle());
  for (int k = 0; k < 2; ++k) {
    sw.release(t.netlist.find_node("s" + std::to_string(k) + ".inv.in"));
  }

  std::mt19937 rng(23);
  std::uniform_int_distribution<int> coin(0, 4);
  for (int cycle = 0; cycle < 24; ++cycle) {
    const bool reset = coin(rng) == 0;
    sw.set("x0", reset);
    bsim.set("reset", reset ? 1 : 0);
    // Two-phase clock: phi1 latches next state into masters, phi2 moves it
    // to the slaves (and hence the PLA inputs).
    sw.set("phi1", true);
    ASSERT_TRUE(sw.settle()) << "phi1 cycle " << cycle;
    sw.set("phi1", false);
    ASSERT_TRUE(sw.settle());
    sw.set("phi2", true);
    ASSERT_TRUE(sw.settle()) << "phi2 cycle " << cycle;
    sw.set("phi2", false);
    ASSERT_TRUE(sw.settle());
    bsim.tick();

    std::uint64_t y = 0;
    for (int m = 0; m < 2; ++m) {
      const Val v = sw.get("y" + std::to_string(m));
      ASSERT_NE(v, Val::VX) << "cycle " << cycle;
      if (v == Val::V1) y |= 1u << m;
    }
    ASSERT_EQ(y, bsim.get("value")) << "cycle " << cycle;
  }
}

// A Mealy FSM with external input dependence in the output.
TEST(FsmChip, SequenceDetectorChip) {
  const char* src = R"(
    processor det (input bit; output seen;) {
      reg st<2>;
      seen = (st == 3);
      always {
        case (st) {
          0: if (bit) st := 1;
          1: if (bit) st := 2; else st := 0;
          2: if (bit) st := 3; else st := 0;
          3: if (bit) st := 3; else st := 0;
        }
      }
    })";
  ChipUnderTest t(src, "det_chip");
  const drc::Result d = drc::check(*t.chip.chip);
  EXPECT_TRUE(d.ok()) << d.summary();
  EXPECT_TRUE(t.netlist.warnings.empty());

  swsim::Simulator sw(t.netlist);
  rtl::BehavioralSim bsim(t.design);
  sw.set("phi1", false);
  sw.set("phi2", false);
  for (int k = 0; k < 2; ++k) {
    sw.set(t.netlist.find_node("s" + std::to_string(k) + ".inv.in"), Val::V1);
  }
  ASSERT_TRUE(sw.settle());
  for (int k = 0; k < 2; ++k) {
    sw.release(t.netlist.find_node("s" + std::to_string(k) + ".inv.in"));
  }
  const std::vector<int> stream = {1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sw.set("x0", stream[i] != 0);
    bsim.set("bit", static_cast<std::uint64_t>(stream[i]));
    sw.set("phi1", true);
    ASSERT_TRUE(sw.settle());
    sw.set("phi1", false);
    ASSERT_TRUE(sw.settle());
    sw.set("phi2", true);
    ASSERT_TRUE(sw.settle());
    sw.set("phi2", false);
    ASSERT_TRUE(sw.settle());
    bsim.tick();
    ASSERT_EQ(sw.get_bool("y0"), bsim.get("seen") != 0) << "step " << i;
  }
}

}  // namespace
}  // namespace silc
