// Tape-fusion tests: one unit test per peephole rule (Not-into-*, copy
// bypass, constant folding, equal-operand folding, Mux simplification,
// dead-code elimination, register-D rerouting), the fused tape's level
// invariant, and randomized netlists cross-checked fused-vs-unfused over
// every word width.
#include <gtest/gtest.h>

#include <random>

#include "net/net.hpp"
#include "random_netlist.hpp"
#include "sim/sim.hpp"

namespace silc::sim {
namespace {

using net::GateKind;
using Code = TapeOp::Code;

SimConfig unfused() {
  SimConfig c;
  c.word = WordKind::U64;
  c.threads = 1;
  c.fuse = false;
  return c;
}
SimConfig fused(WordKind w = WordKind::U64) {
  SimConfig c;
  c.word = w;
  c.threads = 1;
  c.fuse = true;
  return c;
}

/// The ops of a netlist's fused tape, compiled the way CompiledSim does it
/// (primary I/O observable, interior nets fair game).
Tape fused_tape(const net::Netlist& nl) {
  CompiledSim cs(nl, fused());
  return cs.tape();
}

// ------------------------------------------------------ peephole rules --

TEST(Fuse, NotOfAndBecomesNand) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  const int n1 = nl.add_gate(GateKind::And, {a, b}, "n1");
  const int y = nl.add_gate(GateKind::Not, {n1}, "y");
  nl.mark_output(y, "y");

  const Tape t = fused_tape(nl);
  ASSERT_EQ(t.ops.size(), 1u);  // the And is dead once the Not fuses
  EXPECT_EQ(t.ops[0].code, Code::Nand);
  EXPECT_EQ(t.ops[0].out, static_cast<std::uint32_t>(y));
  EXPECT_EQ(t.ops[0].a, static_cast<std::uint32_t>(a));
  EXPECT_EQ(t.ops[0].b, static_cast<std::uint32_t>(b));
}

TEST(Fuse, EveryInvertibleProducerFuses) {
  const std::pair<GateKind, Code> cases[] = {
      {GateKind::And, Code::Nand}, {GateKind::Nand, Code::And},
      {GateKind::Or, Code::Nor},   {GateKind::Nor, Code::Or},
      {GateKind::Xor, Code::Xnor}, {GateKind::Xnor, Code::Xor},
  };
  for (const auto& [kind, want] : cases) {
    net::Netlist nl;
    const int a = nl.add_input("a");
    const int b = nl.add_input("b");
    const int n1 = nl.add_gate(kind, {a, b}, "n1");
    const int y = nl.add_gate(GateKind::Not, {n1}, "y");
    nl.mark_output(y, "y");
    const Tape t = fused_tape(nl);
    ASSERT_EQ(t.ops.size(), 1u) << net::to_string(kind);
    EXPECT_EQ(t.ops[0].code, want) << net::to_string(kind);
  }
}

TEST(Fuse, DoubleNotCollapsesToCopy) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int n1 = nl.add_gate(GateKind::Not, {a}, "n1");
  const int y = nl.add_gate(GateKind::Not, {n1}, "y");
  nl.mark_output(y, "y");

  const Tape t = fused_tape(nl);
  // n1 is interior and dies; y collapses to Copy(a).
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].code, Code::Copy);
  EXPECT_EQ(t.ops[0].out, static_cast<std::uint32_t>(y));
  EXPECT_EQ(t.ops[0].a, static_cast<std::uint32_t>(a));
}

TEST(Fuse, CopyChainsAreBypassed) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int b1 = nl.add_gate(GateKind::Buf, {a}, "b1");
  const int b2 = nl.add_gate(GateKind::Buf, {b1}, "b2");
  const int y = nl.add_gate(GateKind::Not, {b2}, "y");
  nl.mark_output(y, "y");

  const Tape t = fused_tape(nl);
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].code, Code::Not);
  EXPECT_EQ(t.ops[0].a, static_cast<std::uint32_t>(a));  // reads the root
}

TEST(Fuse, ConstantOperandsFold) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int c1 = nl.add_gate(GateKind::Const1, {}, "c1");
  const int c0 = nl.add_gate(GateKind::Const0, {}, "c0");
  const int y1 = nl.add_gate(GateKind::And, {a, c1}, "y1");   // = a
  const int y2 = nl.add_gate(GateKind::And, {a, c0}, "y2");   // = 0
  const int y3 = nl.add_gate(GateKind::Xor, {a, c1}, "y3");   // = ~a
  const int y4 = nl.add_gate(GateKind::Or, {a, c0}, "y4");    // = a
  const int y5 = nl.add_gate(GateKind::Nor, {a, c1}, "y5");   // = 0
  nl.mark_output(y1, "");
  nl.mark_output(y2, "");
  nl.mark_output(y3, "");
  nl.mark_output(y4, "");
  nl.mark_output(y5, "");

  CompiledSim cs(nl, fused());
  for (const TapeOp& op : cs.tape().ops) {
    EXPECT_TRUE(op.code == Code::Copy || op.code == Code::Const0 ||
                op.code == Code::Not)
        << "unexpected op " << static_cast<int>(op.code);
  }
  cs.poke("a", 1);
  cs.eval();
  EXPECT_EQ(cs.peek(nl.net_name(y1)), 1u);
  EXPECT_EQ(cs.peek(nl.net_name(y2)), 0u);
  EXPECT_EQ(cs.peek(nl.net_name(y3)), 0u);
  EXPECT_EQ(cs.peek(nl.net_name(y4)), 1u);
  EXPECT_EQ(cs.peek(nl.net_name(y5)), 0u);
  cs.poke("a", 0);
  cs.eval();
  EXPECT_EQ(cs.peek(nl.net_name(y1)), 0u);
  EXPECT_EQ(cs.peek(nl.net_name(y3)), 1u);
}

TEST(Fuse, ConstnessPropagatesTransitively) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int c1 = nl.add_gate(GateKind::Const1, {}, "c1");
  const int n1 = nl.add_gate(GateKind::Not, {c1}, "n1");    // = 0
  const int n2 = nl.add_gate(GateKind::Or, {n1, c1}, "n2");  // = 1
  const int y = nl.add_gate(GateKind::And, {a, n2}, "y");    // = a
  nl.mark_output(y, "y");

  CompiledSim cs(nl, fused());
  // y folds all the way down to Copy(a); the const scaffolding is dead.
  ASSERT_EQ(cs.tape().ops.size(), 1u);
  EXPECT_EQ(cs.tape().ops[0].code, Code::Copy);
  EXPECT_EQ(cs.tape().ops[0].a, static_cast<std::uint32_t>(a));
  (void)n2;
}

TEST(Fuse, MuxSimplifies) {
  net::Netlist nl;
  const int s = nl.add_input("s");
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  const int c1 = nl.add_gate(GateKind::Const1, {}, "c1");
  const int c0 = nl.add_gate(GateKind::Const0, {}, "c0");
  const int y1 = nl.add_gate(GateKind::Mux, {c1, a, b}, "y1");  // = b
  const int y2 = nl.add_gate(GateKind::Mux, {s, a, a}, "y2");   // = a
  const int y3 = nl.add_gate(GateKind::Mux, {s, c0, c1}, "y3");  // = s
  const int y4 = nl.add_gate(GateKind::Mux, {s, c1, c0}, "y4");  // = ~s
  nl.mark_output(y1, "");
  nl.mark_output(y2, "");
  nl.mark_output(y3, "");
  nl.mark_output(y4, "");

  CompiledSim cs(nl, fused());
  for (const TapeOp& op : cs.tape().ops) {
    EXPECT_NE(op.code, Code::Mux);
  }
  cs.poke("s", 1);
  cs.poke("a", 0);
  cs.poke("b", 1);
  cs.eval();
  EXPECT_EQ(cs.peek(nl.net_name(y1)), 1u);
  EXPECT_EQ(cs.peek(nl.net_name(y2)), 0u);
  EXPECT_EQ(cs.peek(nl.net_name(y3)), 1u);
  EXPECT_EQ(cs.peek(nl.net_name(y4)), 0u);
}

TEST(Fuse, EqualOperandsFold) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int y1 = nl.add_gate(GateKind::Xor, {a, a}, "y1");   // = 0
  const int y2 = nl.add_gate(GateKind::And, {a, a}, "y2");   // = a
  const int y3 = nl.add_gate(GateKind::Nand, {a, a}, "y3");  // = ~a
  const int y4 = nl.add_gate(GateKind::Xnor, {a, a}, "y4");  // = 1
  nl.mark_output(y1, "");
  nl.mark_output(y2, "");
  nl.mark_output(y3, "");
  nl.mark_output(y4, "");

  CompiledSim cs(nl, fused());
  cs.poke("a", 1);
  cs.eval();
  EXPECT_EQ(cs.peek(nl.net_name(y1)), 0u);
  EXPECT_EQ(cs.peek(nl.net_name(y2)), 1u);
  EXPECT_EQ(cs.peek(nl.net_name(y3)), 0u);
  EXPECT_EQ(cs.peek(nl.net_name(y4)), 1u);
  for (const TapeOp& op : cs.tape().ops) {
    EXPECT_TRUE(op.code == Code::Copy || op.code == Code::Not ||
                op.code == Code::Const0 || op.code == Code::Const1);
  }
}

// ------------------------------------------------------------------ DCE --

TEST(Fuse, UnobservableLogicIsRemovedAndPeekThrows) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  const int n1 = nl.add_gate(GateKind::And, {a, b}, "n1");
  const int n2 = nl.add_gate(GateKind::Xor, {n1, a}, "n2");  // dead cone
  const int y = nl.add_gate(GateKind::Or, {a, b}, "y");
  nl.mark_output(y, "y");
  (void)n2;

  CompiledSim cs(nl, fused());
  EXPECT_EQ(cs.tape().ops.size(), 1u);
  EXPECT_GE(cs.fuse_stats().dead_removed, 2u);
  cs.poke("a", 1);
  cs.poke("b", 0);
  EXPECT_EQ(cs.peek("y"), 1u);
  EXPECT_THROW((void)cs.peek("n2"), std::runtime_error);

  // fuse=false keeps everything peekable.
  CompiledSim full(nl, unfused());
  full.poke("a", 1);
  full.poke("b", 0);
  EXPECT_EQ(full.peek("n2"), 1u);  // (a&b)^a = 0^1
}

TEST(Fuse, KeepListPinsInteriorNets) {
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  const int n1 = nl.add_gate(GateKind::And, {a, b}, "n1");
  const int y = nl.add_gate(GateKind::Not, {n1}, "y");
  nl.mark_output(y, "y");

  SimConfig cfg = fused();
  cfg.keep = {"n1"};
  CompiledSim cs(nl, cfg);
  cs.poke("a", 1);
  cs.poke("b", 1);
  EXPECT_EQ(cs.peek("n1"), 1u);
  EXPECT_EQ(cs.peek("y"), 0u);

  SimConfig bad = fused();
  bad.keep = {"no_such_net"};
  EXPECT_THROW(CompiledSim(nl, bad), std::runtime_error);
}

TEST(Fuse, RegisterDataPathReroutesPastCopies) {
  // q := Buf(Buf(d_logic)) — the commit must read through the copies and
  // the copies must die.
  net::Netlist nl;
  const int a = nl.add_input("a");
  const int q = nl.add_net("q");
  const int n1 = nl.add_gate(GateKind::Xor, {a, q}, "n1");
  const int b1 = nl.add_gate(GateKind::Buf, {n1}, "b1");
  const int b2 = nl.add_gate(GateKind::Buf, {b1}, "b2");
  nl.add_gate_driving(GateKind::Dff, {b2}, q, "r0");
  const int y = nl.add_gate(GateKind::Buf, {q}, "y");
  nl.mark_output(y, "y");

  CompiledSim cs(nl, fused());
  ASSERT_EQ(cs.tape().dffs.size(), 1u);
  EXPECT_EQ(cs.tape().dffs[0].second, static_cast<std::uint32_t>(n1));
  CompiledSim ref(nl, unfused());
  cs.poke("a", 1);
  ref.poke("a", 1);
  for (int c = 0; c < 4; ++c) {
    cs.step();
    ref.step();
    EXPECT_EQ(cs.peek("y"), ref.peek("y")) << "cycle " << c;
  }
}

// ------------------------------------------------------- tape integrity --

TEST(Fuse, FusedTapeKeepsLevelInvariant) {
  const net::Netlist nl = silc_fixtures::random_netlist(7);
  CompiledSim cs(nl, fused());
  const Tape& t = cs.tape();

  // Written slots must be written exactly once, after every op that the
  // write's level says it can depend on; an op reads only source slots or
  // slots written at strictly earlier levels.
  std::vector<int> written_level(t.slots, -1);
  std::vector<int> op_level(t.ops.size(), 0);
  for (int l = 0; l + 1 < static_cast<int>(t.level_begin.size()); ++l) {
    for (std::uint32_t i = t.level_begin[l]; i < t.level_begin[l + 1]; ++i) {
      op_level[i] = l + 1;
    }
  }
  std::size_t i = 0;
  for (const TapeOp& op : t.ops) {
    const int lv = op_level[i++];
    const auto check_read = [&](std::uint32_t s) {
      EXPECT_TRUE(written_level[s] == -1 || written_level[s] < lv)
          << "op " << i - 1 << " at level " << lv << " reads slot " << s
          << " written at level " << written_level[s];
    };
    if (op.code != Code::Const0 && op.code != Code::Const1) {
      check_read(op.a);
      if (op.code != Code::Copy && op.code != Code::Not) check_read(op.b);
      if (op.code == Code::Mux) check_read(op.sel);
    }
    EXPECT_EQ(written_level[op.out], -1) << "slot written twice";
    written_level[op.out] = lv;
  }
  EXPECT_LE(t.ops.size(), cs.fuse_stats().ops_before);
}

TEST(Fuse, StatsAreCoherent) {
  const net::Netlist nl = silc_fixtures::random_netlist(11);
  CompiledSim cs(nl, fused());
  const FuseStats& st = cs.fuse_stats();
  EXPECT_GT(st.ops_before, 0u);
  EXPECT_LE(st.ops_after, st.ops_before);
  EXPECT_EQ(st.ops_after, cs.tape().ops.size());
  EXPECT_NE(st.to_string().find("fused"), std::string::npos);
}

// --------------------------------------------- randomized equivalence --

TEST(Fuse, RandomNetlistsMatchUnfusedAcrossAllWordWidths) {
  std::mt19937_64 vals(99);
  for (unsigned seed = 1; seed <= 6; ++seed) {
    const net::Netlist nl = silc_fixtures::random_netlist(seed);
    const std::vector<std::string> probes =
        silc_fixtures::output_probe_names(nl);

    // 8 independent lanes, 32 cycles of dense random input stimulus.
    std::vector<Trace> stimuli(8);
    for (Trace& t : stimuli) {
      t.resize(32);
      for (Vector& row : t) {
        for (const int in : nl.inputs()) {
          row[nl.net_name(in)] = vals() & 1u;
        }
      }
    }

    CompiledSim ref(nl, unfused());
    const std::vector<Trace> want = ref.run(stimuli, probes);
    for (const WordKind w :
         {WordKind::U64, WordKind::V256, WordKind::V512}) {
      CompiledSim cs(nl, fused(w));
      const std::vector<Trace> got = cs.run(stimuli, probes);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t l = 0; l < got.size(); ++l) {
        const TraceDiff d = diff_traces(want[l], got[l]);
        EXPECT_TRUE(d.identical)
            << "seed " << seed << " word " << to_string(w) << " lane " << l
            << ": " << d.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace silc::sim
